// Equivalence and allocation properties of the SoA scheduling kernel
// (CompiledProblem / ScheduleWorkspace):
//
//  1. Across hundreds of randomized problems and moves, kernel TryMove
//     deltas and EvaluateInto totals match a naive full recomputation
//     within 1e-9 (relative), and match the preserved pre-kernel
//     implementation (ReferenceCostEvaluator) bit for bit.
//  2. All four schedulers, rewired onto the kernel, produce bit-identical
//     SchedulingResults to the pre-kernel implementations (reimplemented
//     here verbatim over ReferenceCostEvaluator) for fixed seeds under
//     max_iterations budgets.
//  3. The steady-state evaluate / TryMove / ApplyMove loop performs zero
//     heap allocations, asserted with a counting global operator new.
#include "scheduling/compiled_problem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "scheduling/reference_evaluator.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

// ---------------------------------------------------------------------------
// Counting global allocator (binary-wide): every operator new bumps the
// counter, so a test section can assert "no allocations happened here".
// ---------------------------------------------------------------------------

namespace {
std::atomic<int64_t> g_heap_allocations{0};

void* CountedAlloc(std::size_t n) {
  ++g_heap_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mirabel::scheduling {
namespace {

using flexoffer::TimeSlice;

// ---------------------------------------------------------------------------
// Naive oracle: cost of a schedule recomputed from first principles.
// ---------------------------------------------------------------------------

double NaiveTotalCost(const SchedulingProblem& p, const Schedule& schedule) {
  std::vector<double> net = p.baseline_imbalance_kwh;
  double activation = 0.0;
  for (size_t i = 0; i < p.offers.size(); ++i) {
    const auto& fo = p.offers[i];
    const auto& a = schedule.assignments[i];
    for (int64_t j = 0; j < fo.Duration(); ++j) {
      double e = fo.profile[static_cast<size_t>(j)].min_kwh +
                 a.fill * fo.profile[static_cast<size_t>(j)].Flexibility();
      net[static_cast<size_t>(a.start + j - p.horizon_start)] += e;
      activation += fo.unit_price_eur * std::fabs(e);
    }
  }
  double total = activation;
  for (size_t s = 0; s < net.size(); ++s) {
    double r = net[s];
    double penalty = p.imbalance_penalty_eur[s];
    if (r > 0.0) {
      double price = p.market.buy_price_eur[s];
      double bought = price < penalty ? std::min(r, p.market.max_buy_kwh) : 0.0;
      total += bought * price + (r - bought) * penalty;
    } else if (r < 0.0) {
      double price = p.market.sell_price_eur[s];
      double surplus = -r;
      double sold =
          price >= 0.0 ? std::min(surplus, p.market.max_sell_kwh) : 0.0;
      total += -sold * price + (surplus - sold) * penalty;
    }
  }
  return total;
}

double RelTol(double reference) {
  return 1e-9 * std::max(1.0, std::fabs(reference));
}

ScenarioConfig RandomScenarioConfig(Rng* rng, int index) {
  ScenarioConfig cfg;
  cfg.num_offers = 1 + static_cast<int>(rng->UniformInt(0, 24));
  cfg.seed = 1000 + static_cast<uint64_t>(index);
  cfg.horizon_length = static_cast<int>(rng->UniformInt(24, 96));
  cfg.min_duration = 1 + static_cast<int>(rng->UniformInt(0, 2));
  cfg.max_duration = cfg.min_duration + static_cast<int>(rng->UniformInt(0, 8));
  cfg.max_time_flexibility = 1 + static_cast<int>(rng->UniformInt(0, 20));
  cfg.production_fraction = rng->NextDouble() * 0.6;
  cfg.no_energy_flexibility = rng->Bernoulli(0.15);
  cfg.imbalance_amplitude_kwh = 5.0 + rng->NextDouble() * 60.0;
  cfg.max_buy_kwh = rng->Bernoulli(0.2) ? 0.0 : 5.0 + rng->NextDouble() * 30.0;
  cfg.max_sell_kwh = rng->Bernoulli(0.2) ? 0.0 : 5.0 + rng->NextDouble() * 30.0;
  return cfg;
}

OfferAssignment RandomAssignment(const flexoffer::FlexOffer& fo, Rng* rng) {
  return {fo.earliest_start + rng->UniformInt(0, fo.TimeFlexibility()),
          rng->NextDouble()};
}

Schedule RandomScheduleFor(const SchedulingProblem& p, Rng* rng) {
  Schedule s;
  s.assignments.reserve(p.offers.size());
  for (const auto& fo : p.offers) {
    s.assignments.push_back(RandomAssignment(fo, rng));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Property 1: kernel == naive recomputation (1e-9) == reference (bitwise),
// across >= 200 randomized problems and randomized move sequences.
// ---------------------------------------------------------------------------

TEST(SchedulingKernelPropertyTest, MatchesNaiveAndReferenceAcrossRandomRuns) {
  Rng rng(77);
  int problems = 0;
  for (int it = 0; it < 220; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, it));
    ASSERT_TRUE(p.Validate().ok());
    ++problems;

    CompiledProblem cp(p);
    ScheduleWorkspace ws(cp);
    ReferenceCostEvaluator ref(p);

    // Default schedules agree with each other and with the naive oracle.
    Schedule current;
    ws.ExportSchedule(&current);
    ASSERT_EQ(current.assignments.size(), p.offers.size());
    EXPECT_EQ(ws.Cost(cp).total(), ref.Cost().total());
    EXPECT_NEAR(ws.Cost(cp).total(), NaiveTotalCost(p, current),
                RelTol(ws.Cost(cp).total()));

    for (int move = 0; move < 12 && !p.offers.empty(); ++move) {
      size_t index = rng.Index(p.offers.size());
      OfferAssignment cand = RandomAssignment(p.offers[index], &rng);

      // TryMove: kernel delta == reference delta bitwise, == naive delta
      // within 1e-9.
      double kernel_delta = ws.TryMove(cp, index, cand.start, cand.fill);
      auto ref_delta = ref.TryMove(index, cand);
      ASSERT_TRUE(ref_delta.ok());
      EXPECT_EQ(kernel_delta, *ref_delta);

      Schedule moved = current;
      moved.assignments[index] = cand;
      double naive_delta =
          NaiveTotalCost(p, moved) - NaiveTotalCost(p, current);
      EXPECT_NEAR(kernel_delta, naive_delta, RelTol(NaiveTotalCost(p, moved)));

      // Apply on both sides; full state stays bit-identical.
      ws.ApplyMove(cp, index, cand.start, cand.fill);
      ASSERT_TRUE(ref.ApplyMove(index, cand).ok());
      current = moved;
      ScheduleCost kc = ws.Cost(cp);
      ScheduleCost rc = ref.Cost();
      EXPECT_EQ(kc.imbalance_eur, rc.imbalance_eur);
      EXPECT_EQ(kc.flex_activation_eur, rc.flex_activation_eur);
      EXPECT_EQ(kc.market_eur, rc.market_eur);
      for (size_t s = 0; s < ws.net_kwh().size(); ++s) {
        ASSERT_EQ(ws.net_kwh()[s], ref.net_kwh()[s]) << "slice " << s;
      }
    }

    // EvaluateInto == the pre-kernel EvaluateTotal bitwise, == naive within
    // 1e-9, for a handful of random schedules.
    ScheduleWorkspace pool(cp);
    for (int e = 0; e < 4; ++e) {
      Schedule s = RandomScheduleFor(p, &rng);
      auto kernel_total = pool.EvaluateInto(cp, s);
      auto ref_total = ref.EvaluateTotal(s);
      ASSERT_TRUE(kernel_total.ok());
      ASSERT_TRUE(ref_total.ok());
      EXPECT_EQ(*kernel_total, *ref_total);
      EXPECT_NEAR(*kernel_total, NaiveTotalCost(p, s), RelTol(*ref_total));
    }

    // The shim follows the kernel (spot check). Compare against a *fresh*
    // reference evaluator: `ref` above reached `current` through incremental
    // ApplyMoves, whose floating-point history a fresh SetSchedule does not
    // share (in either implementation).
    CostEvaluator shim(p);
    ASSERT_TRUE(shim.SetSchedule(current).ok());
    ReferenceCostEvaluator fresh_ref(p);
    ASSERT_TRUE(fresh_ref.SetSchedule(current).ok());
    EXPECT_EQ(shim.Cost().total(), fresh_ref.Cost().total());
  }
  EXPECT_GE(problems, 200);
}

TEST(SchedulingKernelPropertyTest, RejectsInfeasibleLikeTheReference) {
  ScenarioConfig cfg;
  cfg.num_offers = 5;
  cfg.seed = 9;
  SchedulingProblem p = MakeScenario(cfg);
  CompiledProblem cp(p);
  ScheduleWorkspace ws(cp);

  Schedule bad;
  EXPECT_EQ(ws.SetSchedule(cp, bad).code(), StatusCode::kInvalidArgument);
  ws.ExportSchedule(&bad);
  bad.assignments[0].fill = 1.5;
  EXPECT_EQ(ws.SetSchedule(cp, bad).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ws.EvaluateInto(cp, bad).status().code(), StatusCode::kOutOfRange);
  bad.assignments[0].fill = 0.5;
  bad.assignments[0].start = p.offers[0].latest_start + 1;
  EXPECT_EQ(ws.SetSchedule(cp, bad).code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// Property 2: the rewired schedulers are bit-identical to the pre-kernel
// implementations for fixed seeds under max_iterations budgets. The old
// Run() loops are reproduced verbatim below on top of ReferenceCostEvaluator.
// ---------------------------------------------------------------------------

namespace reference {

std::vector<TimeSlice> StartCandidates(const flexoffer::FlexOffer& offer,
                                       int max_candidates) {
  int64_t window = offer.TimeFlexibility();
  std::vector<TimeSlice> out;
  if (window < max_candidates) {
    out.reserve(static_cast<size_t>(window) + 1);
    for (int64_t d = 0; d <= window; ++d) {
      out.push_back(offer.earliest_start + d);
    }
    return out;
  }
  out.reserve(static_cast<size_t>(max_candidates));
  for (int i = 0; i < max_candidates; ++i) {
    int64_t d = window * i / (max_candidates - 1);
    out.push_back(offer.earliest_start + d);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SchedulingResult Greedy(const SchedulingProblem& problem,
                        const SchedulerOptions& options,
                        const GreedyScheduler::Config& config) {
  Rng rng(options.seed);
  ReferenceCostEvaluator evaluator(problem);
  SchedulingResult result;
  result.schedule = evaluator.schedule();
  double best_cost = evaluator.Cost().total();
  result.trace.push_back({0.0, best_cost});
  if (problem.offers.empty()) {
    result.cost = evaluator.Cost();
    return result;
  }
  auto out_of_budget = [&]() {
    return options.max_iterations > 0 &&
           result.iterations >= options.max_iterations;
  };
  std::vector<size_t> order(problem.offers.size());
  std::iota(order.begin(), order.end(), 0);
  bool first_pass = true;
  while (!out_of_budget()) {
    rng.Shuffle(&order);
    bool improved_any = false;
    for (size_t index : order) {
      if (out_of_budget()) break;
      const flexoffer::FlexOffer& fo = problem.offers[index];
      OfferAssignment best = evaluator.schedule().assignments[index];
      double best_delta = 0.0;
      for (TimeSlice start :
           StartCandidates(fo, config.max_start_candidates)) {
        for (double fill : config.fill_candidates) {
          OfferAssignment candidate{start, fill};
          Result<double> delta = evaluator.TryMove(index, candidate);
          if (delta.ok() && *delta < best_delta - 1e-12) {
            best_delta = *delta;
            best = candidate;
          }
        }
      }
      if (best_delta < 0.0) {
        EXPECT_TRUE(evaluator.ApplyMove(index, best).ok());
        improved_any = true;
      }
      ++result.iterations;
    }
    double cost = evaluator.Cost().total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      result.schedule = evaluator.schedule();
      result.trace.push_back({0.0, best_cost});
    }
    if (!improved_any && !first_pass) {
      Schedule random_schedule;
      random_schedule.assignments.reserve(problem.offers.size());
      for (const auto& fo : problem.offers) {
        random_schedule.assignments.push_back(
            {fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
             rng.NextDouble()});
      }
      EXPECT_TRUE(evaluator.SetSchedule(random_schedule).ok());
    }
    first_pass = false;
  }
  ReferenceCostEvaluator final_eval(problem);
  EXPECT_TRUE(final_eval.SetSchedule(result.schedule).ok());
  result.cost = final_eval.Cost();
  return result;
}

struct Individual {
  Schedule schedule;
  double cost = 0.0;
};

SchedulingResult Evolutionary(const SchedulingProblem& problem,
                              const SchedulerOptions& options,
                              const EvolutionaryScheduler::Config& config) {
  Rng rng(options.seed);
  ReferenceCostEvaluator evaluator(problem);
  if (problem.offers.empty()) {
    SchedulingResult result;
    result.schedule = evaluator.schedule();
    result.cost = evaluator.Cost();
    result.trace.push_back({0.0, result.cost.total()});
    return result;
  }
  auto evaluate = [&](const Schedule& s) {
    auto total = evaluator.EvaluateTotal(s);
    EXPECT_TRUE(total.ok());
    return *total;
  };
  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(config.population_size));
  {
    Individual baseline;
    baseline.schedule = ReferenceCostEvaluator(problem).schedule();
    baseline.cost = evaluate(baseline.schedule);
    population.push_back(std::move(baseline));
  }
  while (population.size() < static_cast<size_t>(config.population_size)) {
    Individual ind;
    ind.schedule.assignments.reserve(problem.offers.size());
    for (const auto& fo : problem.offers) {
      ind.schedule.assignments.push_back(
          {fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
           rng.NextDouble()});
    }
    ind.cost = evaluate(ind.schedule);
    population.push_back(std::move(ind));
  }
  auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) { return a.cost < b.cost; });
  SchedulingResult result;
  result.schedule = best_it->schedule;
  double best_cost = best_it->cost;
  result.trace.push_back({0.0, best_cost});
  auto out_of_budget = [&]() {
    return options.max_iterations > 0 &&
           result.iterations >= options.max_iterations;
  };
  auto tournament = [&]() -> const Individual& {
    size_t winner = rng.Index(population.size());
    for (int k = 1; k < config.tournament_size; ++k) {
      size_t challenger = rng.Index(population.size());
      if (population[challenger].cost < population[winner].cost) {
        winner = challenger;
      }
    }
    return population[winner];
  };
  const size_t genes = problem.offers.size();
  while (!out_of_budget()) {
    std::vector<Individual> next;
    next.reserve(population.size());
    std::partial_sort(population.begin(),
                      population.begin() + config.elites, population.end(),
                      [](const Individual& a, const Individual& b) {
                        return a.cost < b.cost;
                      });
    for (int e = 0; e < config.elites; ++e) {
      next.push_back(population[static_cast<size_t>(e)]);
    }
    while (next.size() < population.size()) {
      const Individual& parent_a = tournament();
      const Individual& parent_b = tournament();
      Individual child;
      child.schedule.assignments.resize(genes);
      bool crossover = rng.Bernoulli(config.crossover_rate);
      for (size_t g = 0; g < genes; ++g) {
        const Individual& source =
            (crossover && rng.Bernoulli(0.5)) ? parent_b : parent_a;
        child.schedule.assignments[g] = source.schedule.assignments[g];
      }
      for (size_t g = 0; g < genes; ++g) {
        if (!rng.Bernoulli(config.mutation_rate)) continue;
        const flexoffer::FlexOffer& fo = problem.offers[g];
        OfferAssignment& a = child.schedule.assignments[g];
        int64_t window = fo.TimeFlexibility();
        if (window > 0) {
          int64_t span = std::max<int64_t>(
              1, static_cast<int64_t>(
                     std::llround(config.start_mutation_span *
                                  static_cast<double>(window))));
          a.start += rng.UniformInt(-span, span);
          a.start = std::clamp(a.start, fo.earliest_start, fo.latest_start);
        }
        a.fill = Clamp(a.fill + rng.Gaussian(0.0, config.fill_mutation_sigma),
                       0.0, 1.0);
      }
      child.cost = evaluate(child.schedule);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    ++result.iterations;
    for (const Individual& ind : population) {
      if (ind.cost < best_cost - 1e-12) {
        best_cost = ind.cost;
        result.schedule = ind.schedule;
        result.trace.push_back({0.0, best_cost});
      }
    }
  }
  EXPECT_TRUE(evaluator.SetSchedule(result.schedule).ok());
  result.cost = evaluator.Cost();
  return result;
}

SchedulingResult Exhaustive(const SchedulingProblem& problem) {
  ReferenceCostEvaluator evaluator(problem);
  const size_t n = problem.offers.size();
  Schedule current;
  current.assignments.reserve(n);
  for (const auto& fo : problem.offers) {
    current.assignments.push_back({fo.earliest_start, 1.0});
  }
  EXPECT_TRUE(evaluator.SetSchedule(current).ok());
  SchedulingResult result;
  result.schedule = current;
  double best_cost = evaluator.Cost().total();
  result.trace.push_back({0.0, best_cost});
  result.iterations = 1;
  std::vector<int64_t> offsets(n, 0);
  while (true) {
    size_t d = 0;
    while (d < n) {
      const auto& fo = problem.offers[d];
      if (offsets[d] < fo.TimeFlexibility()) {
        ++offsets[d];
        EXPECT_TRUE(
            evaluator
                .ApplyMove(d, {fo.earliest_start + offsets[d],
                               evaluator.schedule().assignments[d].fill})
                .ok());
        break;
      }
      offsets[d] = 0;
      EXPECT_TRUE(evaluator
                      .ApplyMove(d, {fo.earliest_start,
                                     evaluator.schedule().assignments[d].fill})
                      .ok());
      ++d;
    }
    if (d == n) break;
    ++result.iterations;
    double cost = evaluator.Cost().total();
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      result.schedule = evaluator.schedule();
      result.trace.push_back({0.0, best_cost});
    }
  }
  ReferenceCostEvaluator final_eval(problem);
  EXPECT_TRUE(final_eval.SetSchedule(result.schedule).ok());
  result.cost = final_eval.Cost();
  return result;
}

SchedulingResult Hybrid(const SchedulingProblem& problem,
                        const SchedulerOptions& options,
                        const HybridScheduler::Config& config) {
  SchedulerOptions greedy_options = options;
  if (options.max_iterations > 0) {
    greedy_options.max_iterations = std::max(
        1, static_cast<int>(config.construction_share *
                            static_cast<double>(options.max_iterations)));
  }
  SchedulingResult constructed =
      Greedy(problem, greedy_options, GreedyScheduler::Config());
  SchedulerOptions ea_options = options;
  if (options.max_iterations > 0) {
    ea_options.max_iterations =
        std::max(1, options.max_iterations - constructed.iterations);
  }
  ea_options.seed = options.seed + 1;
  SchedulingResult refined =
      Evolutionary(problem, ea_options, config.evolution);
  SchedulingResult result;
  result.iterations = constructed.iterations + refined.iterations;
  if (refined.cost.total() < constructed.cost.total()) {
    result.schedule = refined.schedule;
    result.cost = refined.cost;
  } else {
    result.schedule = constructed.schedule;
    result.cost = constructed.cost;
  }
  result.trace = constructed.trace;
  double floor_cost = constructed.cost.total();
  for (const CostTracePoint& p : refined.trace) {
    if (p.best_cost_eur < floor_cost) {
      result.trace.push_back({0.0, p.best_cost_eur});
      floor_cost = p.best_cost_eur;
    }
  }
  return result;
}

}  // namespace reference

void ExpectBitIdentical(const SchedulingResult& got,
                        const SchedulingResult& want) {
  ASSERT_EQ(got.schedule.assignments.size(), want.schedule.assignments.size());
  for (size_t i = 0; i < got.schedule.assignments.size(); ++i) {
    EXPECT_EQ(got.schedule.assignments[i].start,
              want.schedule.assignments[i].start)
        << "offer " << i;
    EXPECT_EQ(got.schedule.assignments[i].fill,
              want.schedule.assignments[i].fill)
        << "offer " << i;
  }
  EXPECT_EQ(got.cost.imbalance_eur, want.cost.imbalance_eur);
  EXPECT_EQ(got.cost.flex_activation_eur, want.cost.flex_activation_eur);
  EXPECT_EQ(got.cost.market_eur, want.cost.market_eur);
  EXPECT_EQ(got.iterations, want.iterations);
  ASSERT_EQ(got.trace.size(), want.trace.size());
  for (size_t i = 0; i < got.trace.size(); ++i) {
    EXPECT_EQ(got.trace[i].best_cost_eur, want.trace[i].best_cost_eur)
        << "trace point " << i;
  }
}

SchedulerOptions IterBudget(int iters, uint64_t seed) {
  SchedulerOptions opt;
  opt.time_budget_s = 0.0;
  opt.max_iterations = iters;
  opt.seed = seed;
  return opt;
}

TEST(SchedulerBitIdentityTest, GreedyMatchesPreKernelImplementation) {
  for (int n : {3, 25, 60}) {
    ScenarioConfig cfg;
    cfg.num_offers = n;
    cfg.seed = 40 + static_cast<uint64_t>(n);
    SchedulingProblem problem = MakeScenario(cfg);
    SchedulerOptions options = IterBudget(4 * n, 7);
    GreedyScheduler greedy;
    auto got = greedy.Run(problem, options);
    ASSERT_TRUE(got.ok());
    SchedulingResult want =
        reference::Greedy(problem, options, GreedyScheduler::Config());
    ExpectBitIdentical(*got, want);
  }
}

TEST(SchedulerBitIdentityTest, EvolutionaryMatchesPreKernelImplementation) {
  for (int n : {4, 30}) {
    ScenarioConfig cfg;
    cfg.num_offers = n;
    cfg.seed = 50 + static_cast<uint64_t>(n);
    cfg.production_fraction = 0.4;
    SchedulingProblem problem = MakeScenario(cfg);
    SchedulerOptions options = IterBudget(25, 13);
    EvolutionaryScheduler ea;
    auto got = ea.Run(problem, options);
    ASSERT_TRUE(got.ok());
    SchedulingResult want = reference::Evolutionary(
        problem, options, EvolutionaryScheduler::Config());
    ExpectBitIdentical(*got, want);
  }
}

TEST(SchedulerBitIdentityTest, ExhaustiveMatchesPreKernelImplementation) {
  ScenarioConfig cfg;
  cfg.num_offers = 5;
  cfg.max_time_flexibility = 4;
  cfg.seed = 13;
  SchedulingProblem problem = MakeScenario(cfg);
  ExhaustiveScheduler exhaustive;
  SchedulerOptions options;
  options.time_budget_s = 60.0;
  auto got = exhaustive.Run(problem, options);
  ASSERT_TRUE(got.ok());
  SchedulingResult want = reference::Exhaustive(problem);
  ExpectBitIdentical(*got, want);
}

TEST(SchedulerBitIdentityTest, HybridMatchesPreKernelImplementation) {
  ScenarioConfig cfg;
  cfg.num_offers = 20;
  cfg.seed = 91;
  SchedulingProblem problem = MakeScenario(cfg);
  SchedulerOptions options = IterBudget(60, 3);
  HybridScheduler hybrid;
  auto got = hybrid.Run(problem, options);
  ASSERT_TRUE(got.ok());
  SchedulingResult want =
      reference::Hybrid(problem, options, HybridScheduler::Config());
  ExpectBitIdentical(*got, want);
}

TEST(SchedulerBitIdentityTest, GreedySkipsInfeasibleFillCandidates) {
  // The pre-kernel scan rejected out-of-[0,1] fills per TryMove call; the
  // kernel scan filters them up front. Outcomes must match a config that
  // never listed them.
  ScenarioConfig cfg;
  cfg.num_offers = 15;
  cfg.seed = 33;
  SchedulingProblem problem = MakeScenario(cfg);
  SchedulerOptions options = IterBudget(45, 5);

  GreedyScheduler::Config bad;
  bad.fill_candidates = {-0.5, 0.0, 0.5, 1.0, 1.5};
  GreedyScheduler::Config good;
  good.fill_candidates = {0.0, 0.5, 1.0};
  auto bad_run = GreedyScheduler(bad).Run(problem, options);
  auto good_run = GreedyScheduler(good).Run(problem, options);
  ASSERT_TRUE(bad_run.ok());
  ASSERT_TRUE(good_run.ok());
  ExpectBitIdentical(*bad_run, *good_run);
}

TEST(SchedulerBitIdentityTest, GreedyZeroStartCandidatesMatchesReference) {
  // max_start_candidates <= 0 yields no candidates (offers are only ever
  // repositioned by restarts), exactly like the pre-kernel generator.
  ScenarioConfig cfg;
  cfg.num_offers = 12;
  cfg.seed = 55;
  SchedulingProblem problem = MakeScenario(cfg);
  SchedulerOptions options = IterBudget(36, 9);
  GreedyScheduler::Config config;
  config.max_start_candidates = 0;
  auto got = GreedyScheduler(config).Run(problem, options);
  ASSERT_TRUE(got.ok());
  SchedulingResult want = reference::Greedy(problem, options, config);
  ExpectBitIdentical(*got, want);
}

TEST(SchedulerBitIdentityTest, GreedyHandlesSingleStartCandidateCap) {
  // max_start_candidates <= 1 used to divide by zero in the candidate
  // spacing; it now means "earliest start only".
  ScenarioConfig cfg;
  cfg.num_offers = 10;
  cfg.seed = 44;
  SchedulingProblem problem = MakeScenario(cfg);
  GreedyScheduler::Config config;
  config.max_start_candidates = 1;
  auto run = GreedyScheduler(config).Run(problem, IterBudget(20, 3));
  ASSERT_TRUE(run.ok());
  for (size_t i = 0; i < run->schedule.assignments.size(); ++i) {
    EXPECT_EQ(run->schedule.assignments[i].start,
              problem.offers[i].earliest_start);
  }
}

// ---------------------------------------------------------------------------
// Property 3: the steady-state kernel loop is allocation-free.
// ---------------------------------------------------------------------------

TEST(SchedulingKernelAllocationTest, SteadyStateLoopDoesNotAllocate) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.seed = 4;
  SchedulingProblem problem = MakeScenario(cfg);
  Rng rng(5);

  CompiledProblem cp(problem);
  ScheduleWorkspace ws(cp);
  ScheduleWorkspace pool(cp);
  Schedule child = RandomScheduleFor(problem, &rng);

  // Pre-draw the move sequence so the measured section runs only kernel
  // code (the Rng itself never allocates, but keep the section pure).
  struct Move {
    size_t index;
    TimeSlice start;
    double fill;
  };
  std::vector<Move> moves;
  moves.reserve(512);
  for (int i = 0; i < 512; ++i) {
    size_t index = rng.Index(problem.offers.size());
    OfferAssignment a = RandomAssignment(problem.offers[index], &rng);
    moves.push_back({index, a.start, a.fill});
  }

  double sink = 0.0;
  const int64_t before = g_heap_allocations.load();
  // Setup above must have gone through the counting allocator, otherwise
  // the zero-delta assertion below would be vacuous.
  ASSERT_GT(before, 0);
  for (const Move& m : moves) {
    sink += ws.TryMove(cp, m.index, m.start, m.fill);
    ws.ApplyMove(cp, m.index, m.start, m.fill);
    auto total = pool.EvaluateInto(cp, child);
    sink += total.ok() ? *total : 0.0;
  }
  sink += ws.Cost(cp).total();
  const int64_t after = g_heap_allocations.load();
  EXPECT_EQ(after, before) << "steady-state kernel loop allocated";
  EXPECT_TRUE(std::isfinite(sink));
}

// ---------------------------------------------------------------------------
// Property 4 (fast_math): the fast kernel is a tolerance-mode twin of the
// exact kernel — totals and probe deltas within 1e-9 relative, feasibility
// decisions bitwise identical — and delta replay + rollback restore the
// workspace bit-exactly.
// ---------------------------------------------------------------------------

TEST(FastKernelToleranceTest, FastEvaluateMatchesExactWithinTolerance) {
  Rng rng(171);
  for (int it = 0; it < 120; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 9000 + it));
    ASSERT_TRUE(p.Validate().ok());
    CompiledProblem cp(p);
    ScheduleWorkspace exact(cp);
    ScheduleWorkspace fast(cp);

    for (int e = 0; e < 4; ++e) {
      Schedule s = RandomScheduleFor(p, &rng);
      auto exact_total = exact.EvaluateInto(cp, s);
      auto fast_total = fast.EvaluateIntoFast(cp, s);
      ASSERT_TRUE(exact_total.ok());
      ASSERT_TRUE(fast_total.ok());
      EXPECT_NEAR(*fast_total, *exact_total, RelTol(*exact_total));
      EXPECT_NEAR(*fast_total, NaiveTotalCost(p, s), RelTol(*exact_total));
      // The replaced state (assignments, net loads) is bitwise identical —
      // only the cost summation differs between the two evaluators.
      for (size_t i = 0; i < cp.num_offers; ++i) {
        ASSERT_EQ(fast.start(i), exact.start(i));
        ASSERT_EQ(fast.fill(i), exact.fill(i));
      }
      for (size_t sl = 0; sl < exact.net_kwh().size(); ++sl) {
        ASSERT_EQ(fast.net_kwh()[sl], exact.net_kwh()[sl]) << "slice " << sl;
      }
    }
  }
}

TEST(FastKernelToleranceTest, FastEvaluateRejectsExactlyLikeExact) {
  ScenarioConfig cfg;
  cfg.num_offers = 5;
  cfg.seed = 9;
  SchedulingProblem p = MakeScenario(cfg);
  CompiledProblem cp(p);
  ScheduleWorkspace ws(cp);

  Schedule bad;
  EXPECT_EQ(ws.EvaluateIntoFast(cp, bad).status().code(),
            StatusCode::kInvalidArgument);
  ws.ExportSchedule(&bad);
  bad.assignments[0].fill = 1.5;
  EXPECT_EQ(ws.EvaluateIntoFast(cp, bad).status().code(),
            StatusCode::kOutOfRange);
  bad.assignments[0].fill = 0.5;
  bad.assignments[0].start = p.offers[0].latest_start + 1;
  EXPECT_EQ(ws.EvaluateIntoFast(cp, bad).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FastKernelToleranceTest, FastProbeMatchesExactProbeWithinTolerance) {
  Rng rng(313);
  for (int it = 0; it < 80; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 4000 + it));
    CompiledProblem cp(p);
    ScheduleWorkspace ws(cp);
    ASSERT_TRUE(ws.SetSchedule(cp, RandomScheduleFor(p, &rng)).ok());

    std::vector<double> e_cur(static_cast<size_t>(cp.max_duration));
    std::vector<double> e_new(static_cast<size_t>(cp.max_duration));
    for (int probe = 0; probe < 16 && !p.offers.empty(); ++probe) {
      size_t i = rng.Index(p.offers.size());
      OfferAssignment cand = RandomAssignment(p.offers[i], &rng);
      const size_t dur = static_cast<size_t>(cp.duration[i]);
      ws.ComputeEnergies(cp, i, ws.fill(i), e_cur);
      ws.ComputeEnergies(cp, i, cand.fill, e_new);
      std::span<const double> cur{e_cur.data(), dur};
      std::span<const double> cand_e{e_new.data(), dur};
      double exact_delta = ws.TryMoveWithEnergies(cp, i, cand.start, cur,
                                                  cand_e);
      double fast_delta =
          ws.TryMoveWithEnergiesFast(cp, i, cand.start, cur, cand_e);
      // Deltas are differences of similar-magnitude totals, so the
      // tolerance is anchored on the schedule cost, not the delta.
      EXPECT_NEAR(fast_delta, exact_delta, RelTol(ws.Cost(cp).total()))
          << "offer " << i << " probe " << probe;
    }
  }
}

TEST(FastKernelDeltaReplayTest, ReplayMatchesFullEvaluateAndRollsBackBitwise) {
  Rng rng(303);
  for (int it = 0; it < 60; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 7000 + it));
    CompiledProblem cp(p);
    ScheduleWorkspace ws(cp);
    ScheduleWorkspace scratch(cp);
    ScheduleWorkspace::DeltaTrail trail;
    trail.Reserve(cp);

    Schedule base = RandomScheduleFor(p, &rng);
    ASSERT_TRUE(ws.SetSchedule(cp, base).ok());
    const double base_cost = ws.CachedCostTotal(cp);
    EXPECT_NEAR(base_cost, ws.Cost(cp).total(), RelTol(base_cost));
    const double cost_before = ws.Cost(cp).total();
    const std::vector<double> net_before = ws.net_kwh();

    for (int c = 0; c < 8; ++c) {
      // Child diff: mutate a random subset of genes (biased small, like a
      // converged EA generation).
      Schedule child = base;
      const size_t mutations = 1 + rng.Index(std::max<size_t>(
                                       1, p.offers.size() / 2));
      for (size_t m = 0; m < mutations; ++m) {
        size_t g = rng.Index(p.offers.size());
        child.assignments[g] = RandomAssignment(p.offers[g], &rng);
      }

      double replayed = base_cost;
      for (size_t g = 0; g < cp.num_offers; ++g) {
        const OfferAssignment& a = child.assignments[g];
        if (a.start != ws.start(g) || a.fill != ws.fill(g)) {
          replayed += ws.ApplyMoveDelta(cp, g, a.start, a.fill, &trail);
        }
      }
      ws.RollbackDelta(&trail);
      ASSERT_TRUE(trail.empty());

      auto full = scratch.EvaluateIntoFast(cp, child);
      ASSERT_TRUE(full.ok());
      EXPECT_NEAR(replayed, *full, RelTol(*full));
      EXPECT_NEAR(replayed, NaiveTotalCost(p, child), RelTol(*full));

      // Rollback restored the base bit-exactly: the value trail makes the
      // restore path-independent of the floating-point route the replay
      // took (the BnbBound trick).
      for (size_t g = 0; g < cp.num_offers; ++g) {
        ASSERT_EQ(ws.start(g), base.assignments[g].start) << "gene " << g;
        ASSERT_EQ(ws.fill(g), base.assignments[g].fill) << "gene " << g;
      }
      for (size_t s = 0; s < net_before.size(); ++s) {
        ASSERT_EQ(ws.net_kwh()[s], net_before[s]) << "slice " << s;
      }
      ASSERT_EQ(ws.Cost(cp).total(), cost_before);
      ASSERT_EQ(ws.CachedCostTotal(cp), base_cost);
    }
  }
}

// ---------------------------------------------------------------------------
// Property 5 (fast_math): EA equivalence. On a problem whose costs are all
// dyadic rationals (every sum exact in any order), the fast path's only
// difference — float summation order — vanishes, so the fast EA must be
// bit-identical to the exact EA: same RNG draws, same selections, same
// generations. This pins the delta-replay machinery to "changes float
// noise, nothing else".
// ---------------------------------------------------------------------------

SchedulingProblem DyadicProblem() {
  SchedulingProblem p;
  p.horizon_start = 0;
  p.horizon_length = 16;
  p.baseline_imbalance_kwh.assign(16, 0.0);
  for (int s = 0; s < 16; ++s) {
    p.baseline_imbalance_kwh[static_cast<size_t>(s)] =
        (s % 2 == 0 ? 1.0 : -1.0) * 0.25 * static_cast<double>(s % 5);
  }
  p.imbalance_penalty_eur.assign(16, 0.5);
  p.market.buy_price_eur.assign(16, 0.25);
  p.market.sell_price_eur.assign(16, 0.125);
  p.market.max_buy_kwh = 2.0;
  p.market.max_sell_kwh = 2.0;
  for (int i = 0; i < 6; ++i) {
    flexoffer::FlexOffer fo;
    fo.id = static_cast<flexoffer::FlexOfferId>(i + 1);
    fo.earliest_start = i % 4;
    fo.latest_start = fo.earliest_start + 6;
    fo.assignment_before = fo.earliest_start;
    fo.unit_price_eur = 0.25;
    // Zero energy flexibility: fill * Flexibility() contributes exactly 0,
    // so every energy, net load and cost is a dyadic rational.
    fo.profile = {{1.0, 1.0}, {-0.5, -0.5}};
    p.offers.push_back(fo);
  }
  return p;
}

TEST(FastKernelEaEquivalenceTest, BitIdenticalWhenCostsAreExact) {
  SchedulingProblem p = DyadicProblem();
  ASSERT_TRUE(p.Validate().ok());
  SchedulerOptions exact_opt = IterBudget(30, 21);
  SchedulerOptions fast_opt = exact_opt;
  fast_opt.fast_math = true;
  EvolutionaryScheduler ea;
  auto exact_run = ea.Run(p, exact_opt);
  auto fast_run = ea.Run(p, fast_opt);
  ASSERT_TRUE(exact_run.ok());
  ASSERT_TRUE(fast_run.ok());
  ExpectBitIdentical(*fast_run, *exact_run);
}

TEST(FastKernelEaEquivalenceTest, FastRunsReportExactCostsOnRandomScenarios) {
  // Whatever search path the fast kernel takes, the reported result cost is
  // recomputed on the exact path — a fresh reference evaluator agrees
  // bitwise, and the schedule is feasible.
  Rng rng(55);
  for (int it = 0; it < 8; ++it) {
    SchedulingProblem p = MakeScenario(RandomScenarioConfig(&rng, 500 + it));
    SchedulerOptions opt = IterBudget(12, 3 + static_cast<uint64_t>(it));
    opt.fast_math = true;
    EvolutionaryScheduler ea;
    auto ea_run = ea.Run(p, opt);
    ASSERT_TRUE(ea_run.ok());
    ReferenceCostEvaluator ea_check(p);
    ASSERT_TRUE(ea_check.SetSchedule(ea_run->schedule).ok());
    EXPECT_EQ(ea_run->cost.total(), ea_check.Cost().total());

    GreedyScheduler greedy;
    auto greedy_run = greedy.Run(p, opt);
    ASSERT_TRUE(greedy_run.ok());
    ReferenceCostEvaluator greedy_check(p);
    ASSERT_TRUE(greedy_check.SetSchedule(greedy_run->schedule).ok());
    EXPECT_EQ(greedy_run->cost.total(), greedy_check.Cost().total());
  }
}

// ---------------------------------------------------------------------------
// Property 6 (fast_math): allocation discipline. Delta replay is
// allocation-free after DeltaTrail::Reserve, and the EA generation loop no
// longer allocates per child (the pre-fast loop built a vector<Individual>
// per generation plus a gene vector per child).
// ---------------------------------------------------------------------------

TEST(SchedulingKernelAllocationTest, DeltaReplayLoopDoesNotAllocate) {
  ScenarioConfig cfg;
  cfg.num_offers = 40;
  cfg.seed = 14;
  SchedulingProblem problem = MakeScenario(cfg);
  Rng rng(15);

  CompiledProblem cp(problem);
  ScheduleWorkspace ws(cp);
  ScheduleWorkspace::DeltaTrail trail;
  trail.Reserve(cp);
  Schedule base = RandomScheduleFor(problem, &rng);
  ASSERT_TRUE(ws.SetSchedule(cp, base).ok());

  struct Move {
    size_t index;
    TimeSlice start;
    double fill;
  };
  std::vector<Move> moves;
  moves.reserve(512);
  for (int i = 0; i < 512; ++i) {
    size_t index = rng.Index(problem.offers.size());
    OfferAssignment a = RandomAssignment(problem.offers[index], &rng);
    moves.push_back({index, a.start, a.fill});
  }

  double sink = ws.CachedCostTotal(cp);
  const int64_t before = g_heap_allocations.load();
  ASSERT_GT(before, 0);
  for (size_t batch = 0; batch < moves.size(); batch += 8) {
    for (size_t m = batch; m < batch + 8; ++m) {
      sink += ws.ApplyMoveDelta(cp, moves[m].index, moves[m].start,
                                moves[m].fill, &trail);
    }
    ws.RollbackDelta(&trail);
  }
  sink += ws.CachedCostTotal(cp);
  const int64_t after = g_heap_allocations.load();
  EXPECT_EQ(after, before) << "delta-replay loop allocated";
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(SchedulingKernelAllocationTest, EaGenerationLoopAllocationsAmortizeOut) {
  // Allocations must not scale with generation count: running 45 extra
  // generations may only add the trace vector's amortized growth, not the
  // ~population_size allocations per generation the pre-fast loop made.
  // Holds for the exact and the fast path alike.
  ScenarioConfig cfg;
  cfg.num_offers = 25;
  cfg.seed = 77;
  SchedulingProblem problem = MakeScenario(cfg);
  for (bool fast : {false, true}) {
    EvolutionaryScheduler ea;
    auto run_with = [&](int generations) -> int64_t {
      SchedulerOptions opt = IterBudget(generations, 11);
      opt.fast_math = fast;
      const int64_t before = g_heap_allocations.load();
      auto run = ea.Run(problem, opt);
      const int64_t after = g_heap_allocations.load();
      EXPECT_TRUE(run.ok());
      return after - before;
    };
    const int64_t short_run = run_with(5);
    const int64_t long_run = run_with(50);
    EXPECT_LE(long_run - short_run, 64)
        << (fast ? "fast" : "exact")
        << " EA generation loop allocates per generation";
  }
}

}  // namespace
}  // namespace mirabel::scheduling
