// Tests of the ShardedEdmsRuntime: N engine shards behind one event stream.
//
// The determinism contract: for a fixed seed and workload, an N-shard run
// must accept, schedule and execute exactly the same offer ids as the
// 1-shard run, with identical values for every partition-invariant stats
// field (per-offer counters and payments). Fields coupled to the scheduling
// partition itself — scheduling_runs (one per shard with work at a gate),
// macros_scheduled (grouping is per shard), imbalance and cost (each shard
// solves its own problem against the shared baseline) — are additive
// bookkeeping of *how* the work was split and legitimately differ.
//
// The CI thread-sanitizer job runs this suite to vet the worker fan-out and
// the lock-free event merge.
#include "edms/sharded_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "test_util.h"

namespace mirabel::edms {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

EdmsEngine::Config DeterministicEngineConfig() {
  EdmsEngine::Config cfg;
  cfg.actor = 100;
  cfg.negotiate = true;
  cfg.aggregation.params = aggregation::AggregationParams::P3();
  cfg.gate_period = 8;
  cfg.horizon = 96;
  // Iteration-bounded scheduling: bit-identical runs for a fixed seed.
  cfg.scheduler_budget_s = 0.0;
  cfg.scheduler_max_iterations = 40;
  cfg.seed = 77;
  cfg.baseline = std::make_shared<VectorBaselineProvider>(
      std::vector<double>(960, 5.0));
  return cfg;
}

ShardedEdmsRuntime::Config RuntimeConfig(size_t num_shards) {
  ShardedEdmsRuntime::Config rc;
  rc.num_shards = num_shards;
  rc.engine = DeterministicEngineConfig();
  return rc;
}

/// 24 offers from 8 owners. Every offer shares the same time window, so the
/// per-shard aggregation grouping cannot change which offers fit a gate's
/// horizon — the lifecycle outcome is partition-invariant by construction.
std::vector<FlexOffer> Workload() {
  std::vector<FlexOffer> offers;
  for (uint64_t owner = 501; owner <= 508; ++owner) {
    for (uint64_t k = 0; k < 3; ++k) {
      offers.push_back(testutil::OwnedOffer(
          owner * 100 + k, owner, /*assign_before=*/24, /*earliest=*/30,
          /*latest=*/50, /*dur=*/4, /*emin=*/1.0,
          /*emax=*/2.0 + 0.125 * static_cast<double>(k)));
    }
  }
  return offers;
}

std::string Digest(const Event& event) {
  std::ostringstream os;
  os << EventName(event) << "@" << EventTime(event) << ":";
  if (const auto* e = std::get_if<OfferAccepted>(&event)) {
    os << e->offer << " price=" << e->agreed_price_eur;
  } else if (const auto* e = std::get_if<OfferRejected>(&event)) {
    os << e->offer;
  } else if (const auto* e = std::get_if<MacroPublished>(&event)) {
    os << e->macro.id << " members=" << e->member_count
       << " fwd=" << e->forwarded;
  } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
    os << e->schedule.offer_id << " start=" << e->schedule.start
       << " kwh=" << e->schedule.TotalEnergy();
  } else if (const auto* e = std::get_if<OfferExecuted>(&event)) {
    os << e->offer << " kwh=" << e->energy_kwh;
  } else if (const auto* e = std::get_if<OfferExpired>(&event)) {
    os << e->offer;
  }
  return os.str();
}

struct RunOutcome {
  std::set<FlexOfferId> accepted;
  std::set<FlexOfferId> assigned;
  std::set<FlexOfferId> executed;
  std::vector<std::string> digests;
  EngineStats stats;
};

/// Full lifecycle round trip: batch intake at 0, one gate, execution of
/// every assigned schedule at slice 40.
RunOutcome RunWorkload(size_t num_shards) {
  ShardedEdmsRuntime runtime(RuntimeConfig(num_shards));
  std::vector<FlexOffer> offers = Workload();
  auto submitted =
      runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0);
  EXPECT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_TRUE(runtime.Advance(0).ok());

  RunOutcome outcome;
  std::vector<ScheduledFlexOffer> schedules;
  for (const Event& event : runtime.PollEvents()) {
    outcome.digests.push_back(Digest(event));
    if (const auto* e = std::get_if<OfferAccepted>(&event)) {
      outcome.accepted.insert(e->offer);
    } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
      outcome.assigned.insert(e->schedule.offer_id);
      schedules.push_back(e->schedule);
    }
  }
  for (const ScheduledFlexOffer& s : schedules) {
    EXPECT_TRUE(runtime.RecordExecution(s.offer_id, 40, s.TotalEnergy()).ok());
  }
  for (const Event& event : runtime.PollEvents()) {
    outcome.digests.push_back(Digest(event));
    if (const auto* e = std::get_if<OfferExecuted>(&event)) {
      outcome.executed.insert(e->offer);
    }
  }
  outcome.stats = runtime.stats();
  return outcome;
}

TEST(ShardedRuntimeTest, FourShardsMatchSingleShardOutcomes) {
  RunOutcome one = RunWorkload(1);
  RunOutcome four = RunWorkload(4);

  ASSERT_EQ(one.accepted.size(), 24u);
  EXPECT_EQ(four.accepted, one.accepted);
  EXPECT_EQ(four.assigned, one.assigned);
  EXPECT_EQ(four.executed, one.executed);
  ASSERT_EQ(one.assigned.size(), 24u);
  ASSERT_EQ(one.executed.size(), 24u);

  // Partition-invariant stats fields agree exactly.
  EXPECT_EQ(four.stats.offers_received, one.stats.offers_received);
  EXPECT_EQ(four.stats.offers_accepted, one.stats.offers_accepted);
  EXPECT_EQ(four.stats.offers_rejected, one.stats.offers_rejected);
  EXPECT_EQ(four.stats.offers_expired_in_pipeline,
            one.stats.offers_expired_in_pipeline);
  EXPECT_EQ(four.stats.offers_executed, one.stats.offers_executed);
  EXPECT_EQ(four.stats.micro_schedules_sent,
            one.stats.micro_schedules_sent);
  EXPECT_DOUBLE_EQ(four.stats.payments_eur, one.stats.payments_eur);
  // Partition bookkeeping: the 4-shard run split the batch and the
  // scheduling across shards.
  EXPECT_GE(four.stats.submit_batches, one.stats.submit_batches);
  EXPECT_GE(four.stats.scheduling_runs, one.stats.scheduling_runs);
}

TEST(ShardedRuntimeTest, SameShardCountRunsAreIdentical) {
  // Worker interleaving must not leak into observable behaviour: two
  // 4-shard runs produce the same merged event stream, event for event,
  // and identical merged stats on every field.
  RunOutcome a = RunWorkload(4);
  RunOutcome b = RunWorkload(4);
  ASSERT_FALSE(a.digests.empty());
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.stats.submit_batches, b.stats.submit_batches);
  EXPECT_EQ(a.stats.scheduling_runs, b.stats.scheduling_runs);
  EXPECT_EQ(a.stats.macros_scheduled, b.stats.macros_scheduled);
  EXPECT_DOUBLE_EQ(a.stats.payments_eur, b.stats.payments_eur);
  EXPECT_DOUBLE_EQ(a.stats.imbalance_before_kwh,
                   b.stats.imbalance_before_kwh);
  EXPECT_DOUBLE_EQ(a.stats.imbalance_after_kwh, b.stats.imbalance_after_kwh);
  EXPECT_DOUBLE_EQ(a.stats.schedule_cost_eur, b.stats.schedule_cost_eur);
}

TEST(ShardedRuntimeTest, MergedEventStreamIsOrderedBySlice) {
  ShardedEdmsRuntime runtime(RuntimeConfig(3));
  std::vector<FlexOffer> offers = Workload();
  // Stream the workload over several ticks, polling only at the end: the
  // merged drain must still come out ordered by emission slice.
  size_t next = 0;
  for (TimeSlice now = 0; now < 32; ++now) {
    std::vector<FlexOffer> batch;
    while (next < offers.size() && next < (static_cast<size_t>(now) + 1) * 2) {
      batch.push_back(offers[next++]);
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          runtime.SubmitOffers(std::span<const FlexOffer>(batch), now).ok());
    }
    ASSERT_TRUE(runtime.Advance(now).ok());
  }
  std::vector<Event> events = runtime.PollEvents();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(EventTime(events[i - 1]), EventTime(events[i]));
  }
}

TEST(ShardedRuntimeTest, RouterControlsPlacement) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  // Everything below owner 505 pins to shard 0, the rest to shard 1.
  rc.router = [](flexoffer::ActorId owner, size_t) -> size_t {
    return owner < 505 ? 0 : 1;
  };
  ShardedEdmsRuntime runtime(rc);
  EXPECT_EQ(runtime.ShardOf(501), 0u);
  EXPECT_EQ(runtime.ShardOf(505), 1u);

  std::vector<FlexOffer> offers = Workload();  // owners 501..508, 3 each
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  EXPECT_EQ(runtime.shard(0).stats().offers_received, 12);
  EXPECT_EQ(runtime.shard(1).stats().offers_received, 12);
  EXPECT_TRUE(runtime.HasSeenOffer(offers.front()));
}

TEST(ShardedRuntimeTest, ForwardingModePublishesLaneUniqueMacros) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  rc.engine.schedule_locally = false;
  ShardedEdmsRuntime runtime(rc);
  std::vector<FlexOffer> offers = Workload();
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  ASSERT_TRUE(runtime.Advance(0).ok());

  std::vector<FlexOffer> published;
  for (const Event& event : runtime.PollEvents()) {
    if (const auto* e = std::get_if<MacroPublished>(&event)) {
      EXPECT_TRUE(e->forwarded);
      published.push_back(e->macro);
    }
  }
  ASSERT_GE(published.size(), 2u);
  // Both shards publish under actor 100; the id lanes keep the wire ids
  // collision-free.
  std::set<FlexOfferId> macro_ids;
  for (const FlexOffer& macro : published) {
    EXPECT_TRUE(macro_ids.insert(macro.id).second)
        << "duplicate macro wire id " << macro.id;
  }

  // Returning schedules route to the shard that published each macro.
  int assigned = 0;
  for (const FlexOffer& macro : published) {
    ScheduledFlexOffer s;
    s.offer_id = macro.id;
    s.start = macro.earliest_start;
    for (const auto& band : macro.profile) {
      s.energies_kwh.push_back(band.max_kwh);
    }
    ASSERT_TRUE(runtime.CompleteMacroSchedule(s, 1).ok());
  }
  for (const Event& event : runtime.PollEvents()) {
    if (std::get_if<ScheduleAssigned>(&event) != nullptr) ++assigned;
  }
  EXPECT_EQ(assigned, 24);

  ScheduledFlexOffer bogus;
  bogus.offer_id = 424242;
  EXPECT_EQ(runtime.CompleteMacroSchedule(bogus, 1).code(),
            StatusCode::kNotFound);
}

TEST(ShardedRuntimeTest, ExecutionRoutingRejectsUnknownIds) {
  ShardedEdmsRuntime runtime(RuntimeConfig(2));
  EXPECT_EQ(runtime.RecordExecution(999999, 1, 1.0).code(),
            StatusCode::kNotFound);
}

TEST(ShardedRuntimeTest, DuplicateIdsRejectOnlyTheirShard) {
  ShardedEdmsRuntime runtime(RuntimeConfig(2));
  std::vector<FlexOffer> offers = Workload();
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  // Resubmitting one offer poisons its own shard's sub-batch (engine
  // semantics), and the runtime surfaces the error.
  auto again = runtime.SubmitOffers(
      std::span<const FlexOffer>(offers.data(), 1), 0);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

/// 48 offers from 16 owners whose windows all fit every gate of the test's
/// control loop (earliest 48, latest 70, assignment deadline 40): whichever
/// gate first sees an offer can claim it, so the accepted/assigned id SETS
/// are insensitive to when intake lands between gates — the invariant the
/// streaming-equivalence test leans on.
std::vector<FlexOffer> StreamingWorkload() {
  std::vector<FlexOffer> offers;
  for (uint64_t owner = 701; owner <= 716; ++owner) {
    for (uint64_t k = 0; k < 3; ++k) {
      offers.push_back(testutil::OwnedOffer(
          owner * 100 + k, owner, /*assign_before=*/40, /*earliest=*/48,
          /*latest=*/70, /*dur=*/4, /*emin=*/1.0,
          /*emax=*/2.0 + 0.125 * static_cast<double>(k)));
    }
  }
  return offers;
}

struct IdSets {
  std::set<FlexOfferId> accepted;
  std::set<FlexOfferId> assigned;
  EngineStats stats;
};

void Collect(ShardedEdmsRuntime& runtime, IdSets* out) {
  for (const Event& event : runtime.PollEvents()) {
    if (const auto* e = std::get_if<OfferAccepted>(&event)) {
      out->accepted.insert(e->offer);
    } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
      out->assigned.insert(e->schedule.offer_id);
    }
  }
}

/// Drives StreamingWorkload() through gates 0, 8, ..., 40. Tick-aligned:
/// everything submitted (fork-join) before the first gate. Streaming: a
/// producer thread submits 4-offer batches concurrently with gates 0..24,
/// then the intake is flushed before the later gates.
IdSets RunStreamingWorkload(bool streaming, ShardRouter router = nullptr,
                            std::shared_ptr<WorkerPool> pool = nullptr) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(4);
  rc.streaming_intake = streaming;
  rc.router = std::move(router);
  rc.pool = std::move(pool);
  ShardedEdmsRuntime runtime(rc);
  std::vector<FlexOffer> offers = StreamingWorkload();

  IdSets out;
  std::thread producer;
  if (streaming) {
    producer = std::thread([&runtime, &offers] {
      for (size_t i = 0; i < offers.size(); i += 4) {
        auto batch = std::span<const FlexOffer>(
            offers.data() + i, std::min<size_t>(4, offers.size() - i));
        EXPECT_TRUE(runtime.SubmitOffers(batch, 0).ok());
        std::this_thread::yield();
      }
    });
  } else {
    auto submitted =
        runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0);
    EXPECT_TRUE(submitted.ok()) << submitted.status();
  }

  // Gates overlapping the streamed intake.
  for (TimeSlice now = 0; now <= 24; now += 8) {
    EXPECT_TRUE(runtime.Advance(now).ok());
    Collect(runtime, &out);
  }
  if (producer.joinable()) producer.join();
  // Producers stopped: flush the queues so the remaining gates (still
  // before the assignment deadline of 40) see every offer.
  EXPECT_TRUE(runtime.FlushIntake().ok());
  for (TimeSlice now = 32; now <= 40; now += 8) {
    EXPECT_TRUE(runtime.Advance(now).ok());
    Collect(runtime, &out);
  }
  out.stats = runtime.stats();
  return out;
}

TEST(ShardedRuntimeTest, StreamingIntakeMatchesTickAlignedOutcomes) {
  IdSets aligned = RunStreamingWorkload(/*streaming=*/false);
  IdSets streamed = RunStreamingWorkload(/*streaming=*/true);

  ASSERT_EQ(aligned.accepted.size(), 48u);
  ASSERT_EQ(aligned.assigned.size(), 48u);
  EXPECT_EQ(streamed.accepted, aligned.accepted);
  EXPECT_EQ(streamed.assigned, aligned.assigned);
  // Per-offer counters are submission-timing-invariant too.
  EXPECT_EQ(streamed.stats.offers_received, aligned.stats.offers_received);
  EXPECT_EQ(streamed.stats.offers_accepted, aligned.stats.offers_accepted);
  EXPECT_EQ(streamed.stats.offers_rejected, aligned.stats.offers_rejected);
  EXPECT_EQ(streamed.stats.micro_schedules_sent,
            aligned.stats.micro_schedules_sent);
  EXPECT_DOUBLE_EQ(streamed.stats.payments_eur, aligned.stats.payments_eur);
}

TEST(ShardedRuntimeTest, SkewedRouterStreamingStaysCorrectAndBounded) {
  // Adversarial placement: every owner routes to shard 0 of 4, on a shared
  // 2-worker pool, with intake streaming against shard 0's gates. Work
  // stealing keeps the (single) loaded strand moving on whichever worker is
  // free; the run must complete promptly with the full outcome set.
  WorkerPool::Options pool_options;
  pool_options.num_threads = 2;
  auto pool = std::make_shared<WorkerPool>(pool_options);
  auto pin_to_zero = [](flexoffer::ActorId, size_t) -> size_t { return 0; };
  auto start = std::chrono::steady_clock::now();
  IdSets skewed =
      RunStreamingWorkload(/*streaming=*/true, pin_to_zero, pool);
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(skewed.accepted.size(), 48u);
  EXPECT_EQ(skewed.assigned.size(), 48u);
  // Generous wall bound: the CTest timeout is the hard stop; this catches
  // an idle-wait pathology (minutes) without being load-sensitive.
  EXPECT_LT(elapsed_s, 60.0);
}

TEST(ShardedRuntimeTest, StreamingDuplicatesAreDroppedAtDrain) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  rc.streaming_intake = true;
  ShardedEdmsRuntime runtime(rc);
  std::vector<FlexOffer> offers = Workload();

  ASSERT_TRUE(
      runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  ASSERT_TRUE(runtime.FlushIntake().ok());

  // Resubmit the whole workload plus one fresh offer: the duplicates are
  // dropped at drain time (no sticky error) and only the fresh offer is
  // accepted on top.
  std::vector<FlexOffer> again = offers;
  again.push_back(testutil::OwnedOffer(99901, 509, /*assign_before=*/24,
                                       /*earliest=*/30, /*latest=*/50));
  ASSERT_TRUE(
      runtime.SubmitOffers(std::span<const FlexOffer>(again), 0).ok());
  ASSERT_TRUE(runtime.FlushIntake().ok());

  std::set<FlexOfferId> accepted;
  for (const Event& event : runtime.PollEvents()) {
    if (const auto* e = std::get_if<OfferAccepted>(&event)) {
      EXPECT_TRUE(accepted.insert(e->offer).second)
          << "offer " << e->offer << " accepted twice";
    }
  }
  EXPECT_EQ(accepted.size(), 25u);
  EXPECT_EQ(runtime.stats().offers_accepted, 25);
}

TEST(ShardedRuntimeTest, DestructionJoinsPendingStreamingDrains) {
  // Regression: destroying a streaming runtime right after SubmitOffers()
  // must join each strand's fire-and-forget drain tasks BEFORE the shard's
  // intake queue and engine are destroyed (the ASan job catches the
  // use-after-free if the Shard member order regresses).
  std::vector<FlexOffer> offers = Workload();
  for (int round = 0; round < 20; ++round) {
    ShardedEdmsRuntime::Config rc = RuntimeConfig(4);
    rc.streaming_intake = true;
    ShardedEdmsRuntime runtime(rc);
    ASSERT_TRUE(
        runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
    // Destroyed here with the drains possibly still queued.
  }
}

/// Holds the single worker of a 1-thread pool hostage so no drain task can
/// run until Release(): streaming pushes then accumulate in the intake
/// queues deterministically, which is how the bounded-intake tests overflow
/// a queue on purpose.
class BlockedWorker {
 public:
  explicit BlockedWorker(const std::shared_ptr<WorkerPool>& pool)
      : strand_(pool->CreateStrand()) {
    auto gate = std::make_shared<std::future<void>>(gate_.get_future());
    running_ = strand_->Post([gate] { gate->wait(); });
  }

  ~BlockedWorker() { Release(); }

  void Release() {
    if (released_) return;
    released_ = true;
    gate_.set_value();
    running_.get();
  }

 private:
  std::promise<void> gate_;
  std::unique_ptr<WorkerPool::Strand> strand_;
  std::future<void> running_;
  bool released_ = false;
};

/// Seven bounded-intake submissions against a 2-shard runtime (owner % 2):
/// six single-offer calls for owner 501 (shard 1), then one mixed call with
/// an owner-501 and an owner-502 offer. With the worker blocked and a
/// 2-batch bound, calls 3.. overflow shard 1 while shard 0 stays open.
std::vector<std::vector<FlexOffer>> BoundedIntakeCalls() {
  std::vector<std::vector<FlexOffer>> calls;
  for (uint64_t k = 0; k < 6; ++k) {
    calls.push_back({testutil::OwnedOffer(50100 + k, 501,
                                          /*assign_before=*/24,
                                          /*earliest=*/30, /*latest=*/50)});
  }
  calls.push_back({testutil::OwnedOffer(50106, 501, 24, 30, 50),
                   testutil::OwnedOffer(50200, 502, 24, 30, 50)});
  return calls;
}

struct BoundedOutcome {
  std::set<FlexOfferId> accepted;
  std::set<FlexOfferId> shed;
  EngineStats stats;
  int64_t depth_while_blocked = 0;
};

BoundedOutcome RunBoundedIntake(
    size_t max_pending, ShardedEdmsRuntime::Config::OverloadPolicy policy) {
  WorkerPool::Options pool_options;
  pool_options.num_threads = 1;
  auto pool = std::make_shared<WorkerPool>(pool_options);

  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  rc.streaming_intake = true;
  rc.pool = pool;
  rc.max_pending_batches_per_shard = max_pending;
  rc.overload_policy = policy;
  ShardedEdmsRuntime runtime(rc);

  BoundedOutcome out;
  {
    BlockedWorker blocked(pool);
    for (const std::vector<FlexOffer>& call : BoundedIntakeCalls()) {
      auto submitted =
          runtime.SubmitOffers(std::span<const FlexOffer>(call), 0);
      if (!submitted.ok()) {
        EXPECT_EQ(submitted.status().code(), StatusCode::kResourceExhausted);
      }
      // Mid-stream, from the submitter thread, with the queues backed up:
      // the snapshot path must stay available and see the live depth.
      out.depth_while_blocked = std::max(
          out.depth_while_blocked, runtime.Snapshot().intake_depth_batches);
    }
  }  // releases the worker; drains proceed
  EXPECT_TRUE(runtime.FlushIntake().ok());
  EXPECT_TRUE(runtime.Advance(0).ok());

  for (const Event& event : runtime.PollEvents()) {
    if (const auto* e = std::get_if<OfferAccepted>(&event)) {
      out.accepted.insert(e->offer);
    } else if (const auto* e = std::get_if<OfferRejected>(&event)) {
      if (e->reason == RejectReason::kOverloaded) out.shed.insert(e->offer);
    }
  }
  out.stats = runtime.stats();
  return out;
}

TEST(ShardedRuntimeTest, BoundedIntakeShedsWithOverloadedEvents) {
  BoundedOutcome bounded = RunBoundedIntake(
      2, ShardedEdmsRuntime::Config::OverloadPolicy::kShed);
  // The unbounded twin of the same submissions accepts everything.
  BoundedOutcome unbounded = RunBoundedIntake(
      0, ShardedEdmsRuntime::Config::OverloadPolicy::kShed);
  ASSERT_EQ(unbounded.accepted.size(), 8u);
  EXPECT_TRUE(unbounded.shed.empty());

  // Calls 1-2 fill shard 1's queue; calls 3-7 shed their shard-1 offers.
  // Shard 0 never overflows, so 50200 (owner 502) still lands.
  EXPECT_EQ(bounded.accepted,
            (std::set<FlexOfferId>{50100, 50101, 50200}));
  EXPECT_EQ(bounded.shed,
            (std::set<FlexOfferId>{50102, 50103, 50104, 50105, 50106}));
  EXPECT_EQ(bounded.stats.offers_shed, 5);
  // Shed offers never reached an engine: they are not in offers_received /
  // offers_rejected.
  EXPECT_EQ(bounded.stats.offers_received, 3);
  EXPECT_EQ(bounded.stats.offers_rejected, 0);

  // No offer was lost or duplicated: accepted and shed partition exactly
  // the id set the unbounded run accepted.
  std::set<FlexOfferId> covered = bounded.accepted;
  covered.insert(bounded.shed.begin(), bounded.shed.end());
  EXPECT_EQ(covered, unbounded.accepted);
  for (FlexOfferId id : bounded.shed) {
    EXPECT_EQ(bounded.accepted.count(id), 0u) << id;
  }

  // The queues stayed bounded while the worker was blocked: at most
  // max_pending batches on shard 1 plus one open batch on shard 0.
  EXPECT_LE(bounded.depth_while_blocked, 3);
  EXPECT_GE(unbounded.depth_while_blocked, 7);
}

TEST(ShardedRuntimeTest, BoundedIntakeRejectPolicyFailsWholeCall) {
  BoundedOutcome rejected = RunBoundedIntake(
      2, ShardedEdmsRuntime::Config::OverloadPolicy::kReject);
  // Rejected calls enqueue nothing anywhere: the mixed call's shard-0 offer
  // is rejected along with its full shard-1 sub-batch, and no
  // OfferRejected{kOverloaded} events are emitted.
  EXPECT_EQ(rejected.accepted, (std::set<FlexOfferId>{50100, 50101}));
  EXPECT_TRUE(rejected.shed.empty());
  EXPECT_EQ(rejected.stats.offers_shed, 0);
  EXPECT_EQ(rejected.stats.offers_received, 2);
  EXPECT_LE(rejected.depth_while_blocked, 2);
}

TEST(ShardedRuntimeTest, FinalStatsSinkSurvivesShutdown) {
  auto sink = std::make_shared<EngineStats>();
  std::vector<FlexOffer> offers = Workload();
  {
    ShardedEdmsRuntime::Config rc = RuntimeConfig(4);
    rc.streaming_intake = true;
    rc.final_stats = sink;
    ShardedEdmsRuntime runtime(rc);
    ASSERT_TRUE(
        runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
    // Destroyed with drains possibly still queued: the destructor joins
    // them, so nothing is dropped and the sink gets the complete tallies.
  }
  EXPECT_EQ(sink->offers_received, 24);
  EXPECT_EQ(sink->offers_accepted, 24);
  EXPECT_EQ(sink->offers_dropped_at_shutdown, 0);
}

TEST(ShardedRuntimeTest, MeterReadingExecutionFailuresAreCounted) {
  // Pooled (2 shards) and inline (1 shard, no pool) paths both count
  // RecordExecution failures on the metering hot path instead of dropping
  // them silently.
  for (size_t num_shards : {size_t{1}, size_t{2}}) {
    ShardedEdmsRuntime runtime(RuntimeConfig(num_shards));
    std::vector<ShardedEdmsRuntime::MeterReading> readings(2);
    readings[0] = {/*actor=*/501, /*slice=*/1, /*energy_kwh=*/1.5,
                   /*offer_id=*/999999};  // unknown offer: fails
    readings[1] = {/*actor=*/502, /*slice=*/1, /*energy_kwh=*/1.0,
                   /*offer_id=*/0};  // plain measurement: no lifecycle
    runtime.RecordMeterReadings(readings);
    EXPECT_EQ(runtime.stats().metering_failures, 1)
        << num_shards << " shard(s)";
  }
}

TEST(ShardedRuntimeTest, TwoRuntimesShareOneWorkerPool) {
  // Multi-BRP deployment: two 4-shard runtimes on one 2-worker pool. Both
  // must produce their full outcomes (strands of different runtimes
  // interleave on the shared workers), and the pool handle is the same.
  WorkerPool::Options pool_options;
  pool_options.num_threads = 2;
  auto pool = std::make_shared<WorkerPool>(pool_options);

  ShardedEdmsRuntime::Config rc = RuntimeConfig(4);
  rc.pool = pool;
  ShardedEdmsRuntime brp_a(rc);
  rc.engine.actor = 101;
  ShardedEdmsRuntime brp_b(rc);
  ASSERT_EQ(brp_a.pool().get(), pool.get());
  ASSERT_EQ(brp_b.pool().get(), pool.get());

  std::vector<FlexOffer> offers = Workload();
  RunOutcome a_out;
  RunOutcome b_out;
  auto drive = [&offers](ShardedEdmsRuntime& runtime, RunOutcome* out) {
    ASSERT_TRUE(
        runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
    ASSERT_TRUE(runtime.Advance(0).ok());
    for (const Event& event : runtime.PollEvents()) {
      if (const auto* e = std::get_if<OfferAccepted>(&event)) {
        out->accepted.insert(e->offer);
      } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
        out->assigned.insert(e->schedule.offer_id);
      }
    }
  };
  // Interleave the two runtimes' fan-outs on the shared workers.
  std::thread driver_b([&] { drive(brp_b, &b_out); });
  drive(brp_a, &a_out);
  driver_b.join();

  EXPECT_EQ(a_out.accepted.size(), 24u);
  EXPECT_EQ(a_out.assigned.size(), 24u);
  EXPECT_EQ(b_out.accepted, a_out.accepted);
  EXPECT_EQ(b_out.assigned, a_out.assigned);
}

}  // namespace
}  // namespace mirabel::edms
