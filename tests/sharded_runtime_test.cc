// Tests of the ShardedEdmsRuntime: N engine shards behind one event stream.
//
// The determinism contract: for a fixed seed and workload, an N-shard run
// must accept, schedule and execute exactly the same offer ids as the
// 1-shard run, with identical values for every partition-invariant stats
// field (per-offer counters and payments). Fields coupled to the scheduling
// partition itself — scheduling_runs (one per shard with work at a gate),
// macros_scheduled (grouping is per shard), imbalance and cost (each shard
// solves its own problem against the shared baseline) — are additive
// bookkeeping of *how* the work was split and legitimately differ.
//
// The CI thread-sanitizer job runs this suite to vet the worker fan-out and
// the lock-free event merge.
#include "edms/sharded_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"

namespace mirabel::edms {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::ScheduledFlexOffer;
using flexoffer::TimeSlice;

EdmsEngine::Config DeterministicEngineConfig() {
  EdmsEngine::Config cfg;
  cfg.actor = 100;
  cfg.negotiate = true;
  cfg.aggregation.params = aggregation::AggregationParams::P3();
  cfg.gate_period = 8;
  cfg.horizon = 96;
  // Iteration-bounded scheduling: bit-identical runs for a fixed seed.
  cfg.scheduler_budget_s = 0.0;
  cfg.scheduler_max_iterations = 40;
  cfg.seed = 77;
  cfg.baseline = std::make_shared<VectorBaselineProvider>(
      std::vector<double>(960, 5.0));
  return cfg;
}

ShardedEdmsRuntime::Config RuntimeConfig(size_t num_shards) {
  ShardedEdmsRuntime::Config rc;
  rc.num_shards = num_shards;
  rc.engine = DeterministicEngineConfig();
  return rc;
}

/// 24 offers from 8 owners. Every offer shares the same time window, so the
/// per-shard aggregation grouping cannot change which offers fit a gate's
/// horizon — the lifecycle outcome is partition-invariant by construction.
std::vector<FlexOffer> Workload() {
  std::vector<FlexOffer> offers;
  for (uint64_t owner = 501; owner <= 508; ++owner) {
    for (uint64_t k = 0; k < 3; ++k) {
      offers.push_back(testutil::OwnedOffer(
          owner * 100 + k, owner, /*assign_before=*/24, /*earliest=*/30,
          /*latest=*/50, /*dur=*/4, /*emin=*/1.0,
          /*emax=*/2.0 + 0.125 * static_cast<double>(k)));
    }
  }
  return offers;
}

std::string Digest(const Event& event) {
  std::ostringstream os;
  os << EventName(event) << "@" << EventTime(event) << ":";
  if (const auto* e = std::get_if<OfferAccepted>(&event)) {
    os << e->offer << " price=" << e->agreed_price_eur;
  } else if (const auto* e = std::get_if<OfferRejected>(&event)) {
    os << e->offer;
  } else if (const auto* e = std::get_if<MacroPublished>(&event)) {
    os << e->macro.id << " members=" << e->member_count
       << " fwd=" << e->forwarded;
  } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
    os << e->schedule.offer_id << " start=" << e->schedule.start
       << " kwh=" << e->schedule.TotalEnergy();
  } else if (const auto* e = std::get_if<OfferExecuted>(&event)) {
    os << e->offer << " kwh=" << e->energy_kwh;
  } else if (const auto* e = std::get_if<OfferExpired>(&event)) {
    os << e->offer;
  }
  return os.str();
}

struct RunOutcome {
  std::set<FlexOfferId> accepted;
  std::set<FlexOfferId> assigned;
  std::set<FlexOfferId> executed;
  std::vector<std::string> digests;
  EngineStats stats;
};

/// Full lifecycle round trip: batch intake at 0, one gate, execution of
/// every assigned schedule at slice 40.
RunOutcome RunWorkload(size_t num_shards) {
  ShardedEdmsRuntime runtime(RuntimeConfig(num_shards));
  std::vector<FlexOffer> offers = Workload();
  auto submitted =
      runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0);
  EXPECT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_TRUE(runtime.Advance(0).ok());

  RunOutcome outcome;
  std::vector<ScheduledFlexOffer> schedules;
  for (const Event& event : runtime.PollEvents()) {
    outcome.digests.push_back(Digest(event));
    if (const auto* e = std::get_if<OfferAccepted>(&event)) {
      outcome.accepted.insert(e->offer);
    } else if (const auto* e = std::get_if<ScheduleAssigned>(&event)) {
      outcome.assigned.insert(e->schedule.offer_id);
      schedules.push_back(e->schedule);
    }
  }
  for (const ScheduledFlexOffer& s : schedules) {
    EXPECT_TRUE(runtime.RecordExecution(s.offer_id, 40, s.TotalEnergy()).ok());
  }
  for (const Event& event : runtime.PollEvents()) {
    outcome.digests.push_back(Digest(event));
    if (const auto* e = std::get_if<OfferExecuted>(&event)) {
      outcome.executed.insert(e->offer);
    }
  }
  outcome.stats = runtime.stats();
  return outcome;
}

TEST(ShardedRuntimeTest, FourShardsMatchSingleShardOutcomes) {
  RunOutcome one = RunWorkload(1);
  RunOutcome four = RunWorkload(4);

  ASSERT_EQ(one.accepted.size(), 24u);
  EXPECT_EQ(four.accepted, one.accepted);
  EXPECT_EQ(four.assigned, one.assigned);
  EXPECT_EQ(four.executed, one.executed);
  ASSERT_EQ(one.assigned.size(), 24u);
  ASSERT_EQ(one.executed.size(), 24u);

  // Partition-invariant stats fields agree exactly.
  EXPECT_EQ(four.stats.offers_received, one.stats.offers_received);
  EXPECT_EQ(four.stats.offers_accepted, one.stats.offers_accepted);
  EXPECT_EQ(four.stats.offers_rejected, one.stats.offers_rejected);
  EXPECT_EQ(four.stats.offers_expired_in_pipeline,
            one.stats.offers_expired_in_pipeline);
  EXPECT_EQ(four.stats.offers_executed, one.stats.offers_executed);
  EXPECT_EQ(four.stats.micro_schedules_sent,
            one.stats.micro_schedules_sent);
  EXPECT_DOUBLE_EQ(four.stats.payments_eur, one.stats.payments_eur);
  // Partition bookkeeping: the 4-shard run split the batch and the
  // scheduling across shards.
  EXPECT_GE(four.stats.submit_batches, one.stats.submit_batches);
  EXPECT_GE(four.stats.scheduling_runs, one.stats.scheduling_runs);
}

TEST(ShardedRuntimeTest, SameShardCountRunsAreIdentical) {
  // Worker interleaving must not leak into observable behaviour: two
  // 4-shard runs produce the same merged event stream, event for event,
  // and identical merged stats on every field.
  RunOutcome a = RunWorkload(4);
  RunOutcome b = RunWorkload(4);
  ASSERT_FALSE(a.digests.empty());
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.stats.submit_batches, b.stats.submit_batches);
  EXPECT_EQ(a.stats.scheduling_runs, b.stats.scheduling_runs);
  EXPECT_EQ(a.stats.macros_scheduled, b.stats.macros_scheduled);
  EXPECT_DOUBLE_EQ(a.stats.payments_eur, b.stats.payments_eur);
  EXPECT_DOUBLE_EQ(a.stats.imbalance_before_kwh,
                   b.stats.imbalance_before_kwh);
  EXPECT_DOUBLE_EQ(a.stats.imbalance_after_kwh, b.stats.imbalance_after_kwh);
  EXPECT_DOUBLE_EQ(a.stats.schedule_cost_eur, b.stats.schedule_cost_eur);
}

TEST(ShardedRuntimeTest, MergedEventStreamIsOrderedBySlice) {
  ShardedEdmsRuntime runtime(RuntimeConfig(3));
  std::vector<FlexOffer> offers = Workload();
  // Stream the workload over several ticks, polling only at the end: the
  // merged drain must still come out ordered by emission slice.
  size_t next = 0;
  for (TimeSlice now = 0; now < 32; ++now) {
    std::vector<FlexOffer> batch;
    while (next < offers.size() && next < (static_cast<size_t>(now) + 1) * 2) {
      batch.push_back(offers[next++]);
    }
    if (!batch.empty()) {
      ASSERT_TRUE(
          runtime.SubmitOffers(std::span<const FlexOffer>(batch), now).ok());
    }
    ASSERT_TRUE(runtime.Advance(now).ok());
  }
  std::vector<Event> events = runtime.PollEvents();
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(EventTime(events[i - 1]), EventTime(events[i]));
  }
}

TEST(ShardedRuntimeTest, RouterControlsPlacement) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  // Everything below owner 505 pins to shard 0, the rest to shard 1.
  rc.router = [](flexoffer::ActorId owner, size_t) -> size_t {
    return owner < 505 ? 0 : 1;
  };
  ShardedEdmsRuntime runtime(rc);
  EXPECT_EQ(runtime.ShardOf(501), 0u);
  EXPECT_EQ(runtime.ShardOf(505), 1u);

  std::vector<FlexOffer> offers = Workload();  // owners 501..508, 3 each
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  EXPECT_EQ(runtime.shard(0).stats().offers_received, 12);
  EXPECT_EQ(runtime.shard(1).stats().offers_received, 12);
  EXPECT_TRUE(runtime.HasSeenOffer(offers.front()));
}

TEST(ShardedRuntimeTest, ForwardingModePublishesLaneUniqueMacros) {
  ShardedEdmsRuntime::Config rc = RuntimeConfig(2);
  rc.engine.schedule_locally = false;
  ShardedEdmsRuntime runtime(rc);
  std::vector<FlexOffer> offers = Workload();
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  ASSERT_TRUE(runtime.Advance(0).ok());

  std::vector<FlexOffer> published;
  for (const Event& event : runtime.PollEvents()) {
    if (const auto* e = std::get_if<MacroPublished>(&event)) {
      EXPECT_TRUE(e->forwarded);
      published.push_back(e->macro);
    }
  }
  ASSERT_GE(published.size(), 2u);
  // Both shards publish under actor 100; the id lanes keep the wire ids
  // collision-free.
  std::set<FlexOfferId> macro_ids;
  for (const FlexOffer& macro : published) {
    EXPECT_TRUE(macro_ids.insert(macro.id).second)
        << "duplicate macro wire id " << macro.id;
  }

  // Returning schedules route to the shard that published each macro.
  int assigned = 0;
  for (const FlexOffer& macro : published) {
    ScheduledFlexOffer s;
    s.offer_id = macro.id;
    s.start = macro.earliest_start;
    for (const auto& band : macro.profile) {
      s.energies_kwh.push_back(band.max_kwh);
    }
    ASSERT_TRUE(runtime.CompleteMacroSchedule(s, 1).ok());
  }
  for (const Event& event : runtime.PollEvents()) {
    if (std::get_if<ScheduleAssigned>(&event) != nullptr) ++assigned;
  }
  EXPECT_EQ(assigned, 24);

  ScheduledFlexOffer bogus;
  bogus.offer_id = 424242;
  EXPECT_EQ(runtime.CompleteMacroSchedule(bogus, 1).code(),
            StatusCode::kNotFound);
}

TEST(ShardedRuntimeTest, ExecutionRoutingRejectsUnknownIds) {
  ShardedEdmsRuntime runtime(RuntimeConfig(2));
  EXPECT_EQ(runtime.RecordExecution(999999, 1, 1.0).code(),
            StatusCode::kNotFound);
}

TEST(ShardedRuntimeTest, DuplicateIdsRejectOnlyTheirShard) {
  ShardedEdmsRuntime runtime(RuntimeConfig(2));
  std::vector<FlexOffer> offers = Workload();
  ASSERT_TRUE(runtime.SubmitOffers(std::span<const FlexOffer>(offers), 0).ok());
  // Resubmitting one offer poisons its own shard's sub-batch (engine
  // semantics), and the runtime surfaces the error.
  auto again = runtime.SubmitOffers(
      std::span<const FlexOffer>(offers.data(), 1), 0);
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace mirabel::edms
