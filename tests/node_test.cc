// Unit tests of the individual node types (the simulation tests cover the
// assembled hierarchy).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.h"

#include "edms/baseline_provider.h"
#include "node/aggregating_node.h"
#include "node/prosumer_node.h"

namespace mirabel::node {
namespace {

ProsumerNode::Config ProsumerConfig(NodeId id, NodeId brp) {
  ProsumerNode::Config cfg;
  cfg.id = id;
  cfg.brp = brp;
  cfg.offers_per_day = 96.0;  // ~1 per slice: deterministic-ish activity
  cfg.seed = id;
  // These tests pair the prosumer with a raw inbox handler that never acks;
  // passthrough transport keeps send counts 1:1 with offers. The reliability
  // layer has its own tests (reliable_channel_test, the NACK tests below).
  cfg.reliability.enabled = false;
  return cfg;
}

AggregatingNode::Config BrpConfig(NodeId id) {
  AggregatingNode::Config cfg;
  cfg.id = id;
  cfg.engine.negotiate = true;
  cfg.engine.aggregation.params = aggregation::AggregationParams::P3();
  cfg.engine.gate_period = 8;
  cfg.engine.horizon = 96;
  cfg.engine.scheduler_budget_s = 0.005;
  cfg.engine.baseline = std::make_shared<edms::VectorBaselineProvider>(
      std::vector<double>(96 * 10, 5.0));
  return cfg;
}

TEST(ProsumerNodeTest, EmitsValidOffersToItsBrp) {
  MessageBus bus;
  std::vector<Message> inbox;
  ASSERT_TRUE(bus.Register(100, [&inbox](const Message& m) {
                   inbox.push_back(m);
                 }).ok());
  ProsumerNode prosumer(ProsumerConfig(1000, 100), &bus);
  for (flexoffer::TimeSlice t = 0; t < 96; ++t) {
    prosumer.OnTick(t);
    bus.AdvanceTo(t);
  }
  EXPECT_GT(prosumer.stats().offers_created, 20);
  EXPECT_EQ(static_cast<int64_t>(inbox.size()),
            prosumer.stats().offers_created);
  for (const Message& m : inbox) {
    EXPECT_EQ(m.type, MessageType::kFlexOffer);
    EXPECT_EQ(m.from, 1000u);
    EXPECT_TRUE(m.offer.Validate().ok());
    EXPECT_EQ(m.offer.owner, 1000u);
  }
}

TEST(ProsumerNodeTest, ExpiresUnansweredOffers) {
  MessageBus bus;
  ASSERT_TRUE(bus.Register(100, [](const Message&) {}).ok());  // silent BRP
  ProsumerNode prosumer(ProsumerConfig(1000, 100), &bus);
  for (flexoffer::TimeSlice t = 0; t < 2 * 96; ++t) {
    prosumer.OnTick(t);
    bus.AdvanceTo(t);
  }
  // With a mute BRP every sufficiently old offer must have fallen back.
  EXPECT_GT(prosumer.stats().fallbacks, 0);
  EXPECT_EQ(prosumer.stats().offers_accepted, 0);
  EXPECT_EQ(prosumer.stats().offers_executed, 0);
}

TEST(ProsumerNodeTest, AcceptanceRecordsEarnings) {
  MessageBus bus;
  std::vector<Message> inbox;
  ASSERT_TRUE(bus.Register(100, [&inbox](const Message& m) {
                   inbox.push_back(m);
                 }).ok());
  ProsumerNode prosumer(ProsumerConfig(1000, 100), &bus);
  // Generate a few offers.
  for (flexoffer::TimeSlice t = 0; t < 20 && inbox.empty(); ++t) {
    prosumer.OnTick(t);
    bus.AdvanceTo(t);
  }
  ASSERT_FALSE(inbox.empty());
  Message accept;
  accept.type = MessageType::kFlexOfferAccepted;
  accept.from = 100;
  accept.to = 1000;
  accept.sent_at = 20;
  accept.offer_id = inbox.front().offer.id;
  accept.value = 1.5;
  ASSERT_TRUE(bus.Send(accept).ok());
  bus.AdvanceTo(20);
  EXPECT_EQ(prosumer.stats().offers_accepted, 1);
  EXPECT_DOUBLE_EQ(prosumer.stats().earnings_eur, 1.5);
}

TEST(AggregatingNodeTest, NegotiatesAndAggregatesIncomingOffers) {
  MessageBus bus;
  AggregatingNode brp(BrpConfig(100), &bus);
  std::vector<Message> prosumer_inbox;
  ASSERT_TRUE(bus.Register(1000, [&prosumer_inbox](const Message& m) {
                   prosumer_inbox.push_back(m);
                 }).ok());

  // A well-formed flexible offer arrives. The node buffers it: intake is
  // batched per tick, not per message.
  Message msg;
  msg.type = MessageType::kFlexOffer;
  msg.from = 1000;
  msg.to = 100;
  msg.sent_at = 0;
  msg.offer = testutil::OwnedOffer(42, 1000, /*assign_before=*/24,
                                   /*earliest=*/30, /*latest=*/50, /*dur=*/4);
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(0);
  EXPECT_EQ(brp.pending_offers(), 1u);
  EXPECT_EQ(brp.stats().offers_received, 0);

  // The tick submits the batch and fires the gate: negotiation reply and
  // disaggregated schedule go out together.
  brp.OnTick(0);
  bus.AdvanceTo(0);
  EXPECT_EQ(brp.pending_offers(), 0u);
  EXPECT_EQ(brp.stats().offers_received, 1);
  EXPECT_EQ(brp.stats().offers_accepted, 1);
  EXPECT_EQ(brp.stats().submit_batches, 1);
  ASSERT_EQ(prosumer_inbox.size(), 2u);
  EXPECT_EQ(prosumer_inbox[0].type, MessageType::kFlexOfferAccepted);
  EXPECT_GT(prosumer_inbox[0].value, 0.0);
  EXPECT_EQ(prosumer_inbox[1].type, MessageType::kScheduledFlexOffer);
  EXPECT_TRUE(prosumer_inbox[1].schedule.ValidateAgainst(msg.offer).ok());
  EXPECT_EQ(brp.stats().macros_scheduled, 1);

  // A re-sent copy of the same offer is dropped at the next flush.
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(1);
  brp.OnTick(1);
  EXPECT_EQ(brp.stats().offers_received, 1);
}

TEST(AggregatingNodeTest, RejectsInflexibleOffer) {
  MessageBus bus;
  AggregatingNode::Config cfg = BrpConfig(100);
  cfg.engine.negotiation.acceptance.min_value_eur = 1.0;
  AggregatingNode brp(cfg, &bus);
  std::vector<Message> prosumer_inbox;
  ASSERT_TRUE(bus.Register(1000, [&prosumer_inbox](const Message& m) {
                   prosumer_inbox.push_back(m);
                 }).ok());

  Message msg;
  msg.type = MessageType::kFlexOffer;
  msg.from = 1000;
  msg.to = 100;
  msg.sent_at = 0;
  // Rigid offer: no time flexibility, no energy flexibility.
  msg.offer = testutil::OwnedOffer(43, 1000, /*assign_before=*/24,
                                   /*earliest=*/30, /*latest=*/30, /*dur=*/4,
                                   /*emin=*/1.0, /*emax=*/1.0);
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(0);
  brp.OnTick(0);
  bus.AdvanceTo(0);
  EXPECT_EQ(brp.stats().offers_rejected, 1);
  ASSERT_EQ(prosumer_inbox.size(), 1u);
  EXPECT_EQ(prosumer_inbox[0].type, MessageType::kFlexOfferRejected);
}

TEST(AggregatingNodeTest, ExpiresStaleOffersAtGate) {
  MessageBus bus;
  AggregatingNode brp(BrpConfig(100), &bus);
  ASSERT_TRUE(bus.Register(1000, [](const Message&) {}).ok());

  Message msg;
  msg.type = MessageType::kFlexOffer;
  msg.from = 1000;
  msg.to = 100;
  msg.sent_at = 0;
  msg.offer = testutil::OwnedOffer(44, 1000, /*assign_before=*/4,
                                   /*earliest=*/6, /*latest=*/10);
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(0);
  // The node sits out the deadline; the first tick both admits the offer
  // and fires a gate that is already past it.
  brp.OnTick(12);
  ASSERT_EQ(brp.stats().offers_accepted, 1);
  EXPECT_EQ(brp.stats().offers_expired_in_pipeline, 1);
  EXPECT_EQ(brp.stats().macros_scheduled, 0);
}

TEST(AggregatingNodeTest, ShardedNodePartitionsProsumers) {
  MessageBus bus;
  AggregatingNode::Config cfg = BrpConfig(100);
  cfg.num_shards = 2;
  AggregatingNode brp(cfg, &bus);
  std::vector<Message> inbox;
  for (NodeId owner = 1000; owner < 1004; ++owner) {
    ASSERT_TRUE(
        bus.Register(owner, [&inbox](const Message& m) { inbox.push_back(m); })
            .ok());
  }

  // Four prosumers (two per shard under owner % 2) each send one offer.
  for (NodeId owner = 1000; owner < 1004; ++owner) {
    Message msg;
    msg.type = MessageType::kFlexOffer;
    msg.from = owner;
    msg.to = 100;
    msg.sent_at = 0;
    msg.offer =
        testutil::OwnedOffer(owner * 10, owner, /*assign_before=*/24,
                             /*earliest=*/30, /*latest=*/50, /*dur=*/4);
    ASSERT_TRUE(bus.Send(msg).ok());
  }
  bus.AdvanceTo(0);
  brp.OnTick(0);
  bus.AdvanceTo(0);

  // One batch was routed across both shards; merged stats stay additive.
  AggregatingStats stats = brp.stats();
  EXPECT_EQ(stats.offers_received, 4);
  EXPECT_EQ(stats.offers_accepted, 4);
  EXPECT_EQ(stats.submit_batches, 2);  // one sub-batch per shard
  EXPECT_EQ(brp.runtime().shard(0).stats().offers_received, 2);
  EXPECT_EQ(brp.runtime().shard(1).stats().offers_received, 2);
  // Every owner got its accept reply and its disaggregated schedule.
  int accepts = 0;
  int schedules = 0;
  for (const Message& m : inbox) {
    if (m.type == MessageType::kFlexOfferAccepted) ++accepts;
    if (m.type == MessageType::kScheduledFlexOffer) ++schedules;
  }
  EXPECT_EQ(accepts, 4);
  EXPECT_EQ(schedules, 4);
}

TEST(ProsumerNodeTest, HonorsNackWithBackoffResubmit) {
  MessageBus bus;
  std::vector<Message> inbox;
  ASSERT_TRUE(bus.Register(100, [&inbox](const Message& m) {
                   if (m.type == MessageType::kFlexOffer) inbox.push_back(m);
                 }).ok());
  ProsumerNode prosumer(ProsumerConfig(1000, 100), &bus);
  flexoffer::TimeSlice t = 0;
  for (; t < 20 && inbox.empty(); ++t) {
    prosumer.OnTick(t);
    bus.AdvanceTo(t);
  }
  ASSERT_FALSE(inbox.empty());
  const flexoffer::FlexOfferId shed_id = inbox.front().offer.id;

  // The BRP sheds the offer: NACK with retry-after = 2 slices.
  Message nack;
  nack.type = MessageType::kNack;
  nack.from = 100;
  nack.to = 1000;
  nack.sent_at = t;
  nack.offer_id = shed_id;
  nack.value = 2.0;
  ASSERT_TRUE(bus.Send(nack).ok());
  bus.AdvanceTo(t);
  EXPECT_EQ(prosumer.stats().nacks_received, 1);
  EXPECT_EQ(prosumer.stats().offers_resubmitted, 0);  // waiting out backoff

  // Within retry-after + backoff(1) + jitter <= 2 + 1 + 1 slices the offer
  // goes out again — same id, fresh send.
  auto resubmissions = [&inbox, shed_id]() {
    int n = 0;
    for (const Message& m : inbox) {
      if (m.offer.id == shed_id) ++n;
    }
    return n - 1;  // minus the original send
  };
  for (flexoffer::TimeSlice u = t; u < t + 6; ++u) {
    prosumer.OnTick(u);
    bus.AdvanceTo(u);
  }
  EXPECT_EQ(prosumer.stats().offers_resubmitted, 1);
  EXPECT_EQ(resubmissions(), 1);

  // Without a fresh NACK there is no further resubmission (the entry waits),
  // and after max_offer_resubmits NACKs the prosumer gives up and leaves the
  // offer to the deadline fallback.
  for (flexoffer::TimeSlice u = t + 6; u < t + 12; ++u) {
    prosumer.OnTick(u);
    bus.AdvanceTo(u);
  }
  EXPECT_EQ(prosumer.stats().offers_resubmitted, 1);
  for (int round = 0; round < 5; ++round) {
    nack.sent_at = t + 12 + round * 8;
    ASSERT_TRUE(bus.Send(nack).ok());
    for (flexoffer::TimeSlice u = nack.sent_at; u < nack.sent_at + 8; ++u) {
      bus.AdvanceTo(u);
      prosumer.OnTick(u);
    }
  }
  EXPECT_EQ(prosumer.stats().nacks_received, 6);
  // Capped at max_offer_resubmits (3); the deadline fallback may close the
  // offer before all retries are spent, but the cap is never exceeded.
  EXPECT_LE(prosumer.stats().offers_resubmitted, 3);
  EXPECT_GE(prosumer.stats().offers_resubmitted, 1);
}

TEST(AggregatingNodeTest, DrainPhaseRefusesLateOffersWithReply) {
  // Regression: offers arriving during wind-down used to be buffered into a
  // batch no gate would ever run — silently stranding the owner until its
  // deadline. They must be refused with a terminal reply instead.
  MessageBus bus;
  AggregatingNode::Config cfg = BrpConfig(100);
  cfg.reliability.enabled = false;  // raw inbox below never acks
  AggregatingNode brp(cfg, &bus);
  std::vector<Message> inbox;
  ASSERT_TRUE(bus.Register(1000, [&inbox](const Message& m) {
                   inbox.push_back(m);
                 }).ok());

  brp.OnTick(0);
  brp.FlushBuffers(10);  // wind-down begins: no gate will run again

  Message late;
  late.type = MessageType::kFlexOffer;
  late.from = 1000;
  late.to = 100;
  late.sent_at = 11;
  late.offer = testutil::OwnedOffer(77, 1000, /*assign_before=*/40,
                                    /*earliest=*/48, /*latest=*/60, /*dur=*/4);
  ASSERT_TRUE(bus.Send(late).ok());
  bus.AdvanceTo(11);
  EXPECT_EQ(brp.late_offers_refused(), 1);
  EXPECT_EQ(brp.pending_offers(), 0u);  // refused inline, not buffered
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].type, MessageType::kFlexOfferRejected);
  EXPECT_EQ(inbox[0].offer_id, 77u);
  // The refused offer never reached an engine.
  EXPECT_EQ(brp.stats().offers_received, 0);

  // A late copy of an offer the node already admitted is NOT refused (the
  // runtime's own state terminalizes it); it is dropped as the duplicate
  // it is.
  brp.FlushBuffers(12);
  bus.AdvanceTo(12);
  EXPECT_EQ(brp.late_offers_refused(), 1);
}

TEST(AggregatingNodeTest, FlushBuffersExpiresStrandedPipelineOffers) {
  // An offer admitted before wind-down whose deadline passes during the
  // drain must be terminalized by the deadline sweep, without a gate.
  MessageBus bus;
  AggregatingNode::Config cfg = BrpConfig(100);
  cfg.reliability.enabled = false;
  AggregatingNode brp(cfg, &bus);
  ASSERT_TRUE(bus.Register(1000, [](const Message&) {}).ok());

  Message msg;
  msg.type = MessageType::kFlexOffer;
  msg.from = 1000;
  msg.to = 100;
  msg.sent_at = 0;
  msg.offer = testutil::OwnedOffer(88, 1000, /*assign_before=*/6,
                                   /*earliest=*/8, /*latest=*/12, /*dur=*/2);
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(0);
  // First wind-down flush admits the buffered offer (negotiation accepts
  // it) but never opens a gate.
  brp.FlushBuffers(1);
  ASSERT_EQ(brp.stats().offers_accepted, 1);
  EXPECT_EQ(brp.stats().offers_expired_in_pipeline, 0);
  // Once the deadline passes, the sweep expires it.
  brp.FlushBuffers(7);
  EXPECT_EQ(brp.stats().offers_expired_in_pipeline, 1);
  EXPECT_EQ(brp.stats().macros_scheduled, 0);
}

TEST(AggregatingNodeTest, MeasurementsLandInStore) {
  MessageBus bus;
  AggregatingNode brp(BrpConfig(100), &bus);
  Message msg;
  msg.type = MessageType::kMeasurement;
  msg.from = 1000;
  msg.to = 100;
  msg.sent_at = 7;
  msg.value = 3.25;
  ASSERT_TRUE(bus.Send(msg).ok());
  bus.AdvanceTo(7);
  brp.OnTick(7);  // meter readings flush as one routed batch per tick
  auto series = brp.store(brp.runtime().ShardOf(1000))
                    .MeasurementSeries(1000, storage::EnergyType::kConsumption,
                                       0, 10);
  EXPECT_DOUBLE_EQ(series[7], 3.25);
}

}  // namespace
}  // namespace mirabel::node
