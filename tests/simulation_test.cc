#include "node/simulation.h"

#include <gtest/gtest.h>

namespace mirabel::node {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig cfg;
  cfg.num_brps = 2;
  cfg.prosumers_per_brp = 8;
  cfg.days = 1;
  cfg.offers_per_day = 6.0;
  cfg.scheduler_budget_s = 0.01;
  cfg.seed = 5;
  return cfg;
}

/// Lifecycle conservation invariants that must hold for any run.
void CheckInvariants(const SimulationReport& r) {
  EXPECT_GE(r.offers_created, r.offers_accepted);
  EXPECT_GE(r.offers_accepted, r.schedules_received);
  EXPECT_EQ(r.schedules_received, r.offers_executed);
  // Every created offer ends up accepted-or-rejected-or-pending; fallbacks
  // cannot exceed what was created.
  EXPECT_LE(r.fallbacks, r.offers_created);
  EXPECT_GE(r.messages_sent, r.messages_delivered);
  EXPECT_EQ(r.messages_sent, r.messages_delivered + r.messages_dropped +
                                 static_cast<int64_t>(0));
}

TEST(SimulationTest, TwoLevelRunsAndSchedules) {
  EdmsSimulation sim(SmallConfig());
  SimulationReport report = sim.Run();
  CheckInvariants(report);
  EXPECT_GT(report.offers_created, 20);
  EXPECT_GT(report.offers_accepted, 0);
  EXPECT_GT(report.schedules_received, 0);
  EXPECT_GT(report.scheduling_runs, 0);
  EXPECT_EQ(report.messages_dropped, 0);
}

TEST(SimulationTest, SchedulingReducesImbalance) {
  SimulationConfig cfg = SmallConfig();
  cfg.days = 2;
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  EXPECT_GT(report.imbalance_before_kwh, 0.0);
  EXPECT_LE(report.imbalance_after_kwh, report.imbalance_before_kwh);
}

TEST(SimulationTest, ThreeLevelForwardsThroughTso) {
  SimulationConfig cfg = SmallConfig();
  cfg.use_tso = true;
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  CheckInvariants(report);
  ASSERT_NE(sim.tso(), nullptr);
  // The TSO received macro offers from the BRPs and ran the scheduler.
  EXPECT_GT(sim.tso()->stats().offers_received, 0);
  EXPECT_GT(sim.tso()->stats().scheduling_runs, 0);
  EXPECT_GT(report.schedules_received, 0);
}

TEST(SimulationTest, DeterministicForFixedSeed) {
  // Wall-clock budgets can vary which schedule wins, but not the lifecycle
  // counts: the same offers arrive, pass negotiation, and get scheduled.
  SimulationConfig cfg = SmallConfig();
  EdmsSimulation a(cfg);
  EdmsSimulation b(cfg);
  SimulationReport ra = a.Run();
  SimulationReport rb = b.Run();
  EXPECT_EQ(ra.offers_created, rb.offers_created);
  EXPECT_EQ(ra.offers_accepted, rb.offers_accepted);
  EXPECT_EQ(ra.messages_sent, rb.messages_sent);
}

TEST(SimulationTest, ShardedNodesMatchSingleEngineIntake) {
  // Intake is per-offer deterministic, so partitioning each BRP across
  // engine shards must not change which offers get created or accepted —
  // only how the scheduling work is split.
  SimulationConfig cfg = SmallConfig();
  EdmsSimulation single(cfg);
  SimulationReport rs = single.Run();
  cfg.shards_per_node = 2;
  EdmsSimulation sharded(cfg);
  SimulationReport rp = sharded.Run();
  CheckInvariants(rp);
  EXPECT_EQ(rp.offers_created, rs.offers_created);
  EXPECT_EQ(rp.offers_accepted, rs.offers_accepted);
  EXPECT_EQ(rp.offers_rejected, rs.offers_rejected);
  EXPECT_GT(rp.schedules_received, 0);
  for (const auto& brp : sharded.brps()) {
    EXPECT_EQ(brp->runtime().num_shards(), 2u);
  }
}

TEST(SimulationTest, MessageLossDegradesGracefully) {
  SimulationConfig cfg = SmallConfig();
  cfg.days = 2;
  cfg.bus.drop_probability = 0.10;
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  CheckInvariants(report);
  EXPECT_GT(report.messages_dropped, 0);
  // The system still makes progress: some offers are scheduled, the lost
  // ones fall back, nothing crashes or wedges.
  EXPECT_GT(report.schedules_received, 0);
  EXPECT_GT(report.fallbacks, 0);
}

TEST(SimulationTest, LatencyStillDeliversSchedules) {
  SimulationConfig cfg = SmallConfig();
  cfg.days = 2;
  cfg.bus.latency_slices = 2;
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  CheckInvariants(report);
  EXPECT_GT(report.schedules_received, 0);
}

TEST(SimulationTest, ExecutedSchedulesRespectOfferConstraints) {
  SimulationConfig cfg = SmallConfig();
  EdmsSimulation sim(cfg);
  (void)sim.Run();
  for (const auto& prosumer : sim.prosumers()) {
    for (const auto& fact : prosumer->store().FlexOffersInState(
             storage::FlexOfferState::kExecuted)) {
      EXPECT_TRUE(fact.schedule.ValidateAgainst(fact.offer).ok());
    }
  }
}

TEST(SimulationTest, ProsumerEarningsMatchAcceptedPrices) {
  SimulationConfig cfg = SmallConfig();
  EdmsSimulation sim(cfg);
  SimulationReport report = sim.Run();
  if (report.offers_accepted > 0) {
    EXPECT_GT(report.prosumer_earnings_eur, 0.0);
  }
}

}  // namespace
}  // namespace mirabel::node
