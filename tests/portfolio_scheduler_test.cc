// The portfolio race's contract: the winner is deterministic (strictly
// lowest cost, ties to the lowest rank), the result is never worse than the
// best member's, and the race runs correctly — and TSan-clean — on a shared
// two-worker WorkerPool through the edms::WorkerPoolExecutor seam.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "edms/pool_executor.h"
#include "edms/worker_pool.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/portfolio_scheduler.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

namespace mirabel::scheduling {
namespace {

SchedulerOptions IterBudget(int iters) {
  SchedulerOptions opt;
  opt.time_budget_s = 0.0;
  opt.max_iterations = iters;
  opt.seed = 11;
  return opt;
}

/// Member stand-in with a known, fixed schedule, so winner selection can be
/// scripted.
class FixedScheduler : public Scheduler {
 public:
  explicit FixedScheduler(Schedule schedule) : schedule_(std::move(schedule)) {}
  std::string Name() const override { return "Fixed"; }
  Result<SchedulingResult> Run(const SchedulingProblem& problem,
                               const SchedulerOptions& options) override {
    MIRABEL_RETURN_IF_ERROR(problem.Validate());
    CompiledProblem cp(problem);
    return RunCompiled(cp, options);
  }
  Result<SchedulingResult> RunCompiled(const CompiledProblem& cp,
                                       const SchedulerOptions&) override {
    ScheduleWorkspace ws(cp);
    MIRABEL_RETURN_IF_ERROR(ws.SetSchedule(cp, schedule_));
    SchedulingResult result;
    result.schedule = schedule_;
    result.cost = ws.Cost(cp);
    result.iterations = 1;
    result.trace.push_back({0.0, result.cost.total()});
    return result;
  }

 private:
  Schedule schedule_;
};

PortfolioScheduler::Member FixedMember(const std::string& name,
                                       const Schedule& schedule) {
  return {name,
          [schedule] { return std::make_unique<FixedScheduler>(schedule); }};
}

TEST(PortfolioSchedulerTest, LowestCostMemberWins) {
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.num_offers = 20;
  SchedulingProblem problem = MakeScenario(cfg);
  CompiledProblem cp(problem);

  // "weak" is the kernel default schedule; "strong" a greedy improvement.
  Schedule weak;
  ScheduleWorkspace(cp).ExportSchedule(&weak);
  GreedyScheduler greedy;
  auto improved = greedy.Run(problem, IterBudget(80));
  ASSERT_TRUE(improved.ok());
  ASSERT_LT(improved->cost.total(),
            ScheduleWorkspace(cp).Cost(cp).total());  // strictly better

  PortfolioScheduler::Config config;
  config.members.push_back(FixedMember("weak-a", weak));
  config.members.push_back(FixedMember("strong", improved->schedule));
  config.members.push_back(FixedMember("weak-b", weak));
  PortfolioScheduler portfolio(config);

  auto result = portfolio.Run(problem, IterBudget(10));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost.total(), improved->cost.total());
  ASSERT_EQ(result->portfolio.size(), 3u);
  EXPECT_FALSE(result->portfolio[0].won);
  EXPECT_TRUE(result->portfolio[1].won);
  EXPECT_FALSE(result->portfolio[2].won);
  EXPECT_EQ(result->portfolio[1].name, "strong");
  for (const PortfolioMemberStats& member : result->portfolio) {
    EXPECT_TRUE(member.ok);
  }
}

TEST(PortfolioSchedulerTest, CostTiesResolveToTheLowestRank) {
  ScenarioConfig cfg;
  cfg.seed = 32;
  cfg.num_offers = 15;
  SchedulingProblem problem = MakeScenario(cfg);
  CompiledProblem cp(problem);
  Schedule same;
  ScheduleWorkspace(cp).ExportSchedule(&same);

  PortfolioScheduler::Config config;
  config.members.push_back(FixedMember("first", same));
  config.members.push_back(FixedMember("second", same));
  PortfolioScheduler portfolio(config);

  auto result = portfolio.Run(problem, IterBudget(10));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->portfolio.size(), 2u);
  EXPECT_TRUE(result->portfolio[0].won);
  EXPECT_FALSE(result->portfolio[1].won);
}

TEST(PortfolioSchedulerTest, DefaultRaceOnWorkerPoolBeatsNoMember) {
  ScenarioConfig cfg;
  cfg.seed = 33;
  cfg.num_offers = 12;
  cfg.max_time_flexibility = 6;
  SchedulingProblem problem = MakeScenario(cfg);

  edms::WorkerPool::Options pool_options;
  pool_options.num_threads = 2;
  edms::WorkerPool pool(pool_options);

  PortfolioScheduler::Config config;  // default members: greedy/EA/hybrid/bnb
  config.executor = std::make_shared<edms::WorkerPoolExecutor>(&pool);
  PortfolioScheduler portfolio(config);

  auto result = portfolio.Run(problem, IterBudget(60));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->portfolio.size(), 4u);

  int winners = 0;
  double best_member = std::numeric_limits<double>::infinity();
  for (const PortfolioMemberStats& member : result->portfolio) {
    ASSERT_TRUE(member.ok) << member.name;
    winners += member.won ? 1 : 0;
    best_member = std::min(best_member, member.cost_eur);
  }
  EXPECT_EQ(winners, 1);
  // The race is never worse than its best member.
  EXPECT_DOUBLE_EQ(result->cost.total(), best_member);
  // Member names are the underlying scheduler names, rank order preserved.
  EXPECT_EQ(result->portfolio[0].name, "GreedySearch");
  EXPECT_EQ(result->portfolio[1].name, "EvolutionaryAlgorithm");
  EXPECT_EQ(result->portfolio[2].name, "Hybrid");
  EXPECT_EQ(result->portfolio[3].name, "BranchAndBound");

  // Iteration-capped members are deterministic, so the whole race is: a
  // second run on the same pool must reproduce the winner bit for bit.
  auto again = portfolio.Run(problem, IterBudget(60));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->cost.total(), result->cost.total());
  for (size_t rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(again->portfolio[rank].won, result->portfolio[rank].won) << rank;
  }
}

}  // namespace
}  // namespace mirabel::scheduling
