#include "forecasting/estimator.h"

#include <cmath>
#include <gtest/gtest.h>

namespace mirabel::forecasting {
namespace {

/// Convex quadratic with minimum at (0.3, 0.7).
double Quadratic(const std::vector<double>& x) {
  double a = x[0] - 0.3;
  double b = x[1] - 0.7;
  return a * a + b * b;
}

std::vector<ParamBound> UnitBox(size_t n) {
  return std::vector<ParamBound>(n, ParamBound{0.0, 1.0});
}

EstimatorOptions Budget(int evals) {
  EstimatorOptions opt;
  opt.time_budget_s = 0.0;  // unlimited time
  opt.max_evals = evals;
  opt.seed = 7;
  return opt;
}

class EstimatorSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(EstimatorSuite, MinimisesQuadratic) {
  auto estimator = MakeEstimator(GetParam());
  ASSERT_NE(estimator, nullptr);
  EstimationResult r =
      estimator->Estimate(Quadratic, UnitBox(2), Budget(3000));
  ASSERT_EQ(r.best_params.size(), 2u);
  EXPECT_LT(r.best_value, 0.01);
  EXPECT_NEAR(r.best_params[0], 0.3, 0.12);
  EXPECT_NEAR(r.best_params[1], 0.7, 0.12);
}

TEST_P(EstimatorSuite, StaysInsideBounds) {
  auto estimator = MakeEstimator(GetParam());
  std::vector<ParamBound> box = {{0.2, 0.4}, {0.5, 0.6}};
  bool violated = false;
  Objective guarded = [&violated, &box](const std::vector<double>& x) {
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] < box[i].lo - 1e-12 || x[i] > box[i].hi + 1e-12) {
        violated = true;
      }
    }
    return Quadratic(x);
  };
  estimator->Estimate(guarded, box, Budget(1000));
  EXPECT_FALSE(violated);
}

TEST_P(EstimatorSuite, RespectsEvalBudget) {
  auto estimator = MakeEstimator(GetParam());
  int evals = 0;
  Objective counting = [&evals](const std::vector<double>& x) {
    ++evals;
    return Quadratic(x);
  };
  EstimationResult r = estimator->Estimate(counting, UnitBox(2), Budget(100));
  EXPECT_LE(evals, 100 + 2);  // tiny slack for in-flight evaluations
  EXPECT_EQ(r.evals, std::min(evals, 100));
}

TEST_P(EstimatorSuite, TraceIsMonotoneDecreasing) {
  auto estimator = MakeEstimator(GetParam());
  EstimationResult r =
      estimator->Estimate(Quadratic, UnitBox(2), Budget(2000));
  ASSERT_FALSE(r.trace.empty());
  for (size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LT(r.trace[i].best_value, r.trace[i - 1].best_value);
    EXPECT_GE(r.trace[i].time_s, r.trace[i - 1].time_s);
  }
  EXPECT_DOUBLE_EQ(r.trace.back().best_value, r.best_value);
}

TEST_P(EstimatorSuite, DeterministicForFixedSeed) {
  auto a = MakeEstimator(GetParam())->Estimate(Quadratic, UnitBox(2),
                                               Budget(500));
  auto b = MakeEstimator(GetParam())->Estimate(Quadratic, UnitBox(2),
                                               Budget(500));
  EXPECT_DOUBLE_EQ(a.best_value, b.best_value);
  EXPECT_EQ(a.best_params, b.best_params);
}

TEST_P(EstimatorSuite, SurvivesInfiniteObjectiveRegions) {
  auto estimator = MakeEstimator(GetParam());
  Objective spiky = [](const std::vector<double>& x) {
    if (x[0] > 0.8) return std::numeric_limits<double>::infinity();
    return Quadratic(x);
  };
  EstimationResult r = estimator->Estimate(spiky, UnitBox(2), Budget(2000));
  EXPECT_TRUE(std::isfinite(r.best_value));
  EXPECT_LE(r.best_params[0], 0.8);
}

INSTANTIATE_TEST_SUITE_P(All, EstimatorSuite,
                         ::testing::Values("NelderMead",
                                           "RandomRestartNelderMead",
                                           "SimulatedAnnealing",
                                           "RandomSearch"),
                         [](const auto& info) { return info.param; });

TEST(EstimatorFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeEstimator("GradientDescent"), nullptr);
}

TEST(NelderMeadTest, WarmStartConverges) {
  NelderMeadEstimator warm({0.31, 0.69});
  EstimationResult r = warm.Estimate(Quadratic, UnitBox(2), Budget(300));
  EXPECT_LT(r.best_value, 1e-6);
}

TEST(RandomRestartTest, EscapesLocalMinimum) {
  // Two basins: a shallow local minimum near 0.1 and the global one at 0.9.
  Objective two_wells = [](const std::vector<double>& x) {
    double local = 0.5 + 10.0 * (x[0] - 0.1) * (x[0] - 0.1);
    double global = 50.0 * (x[0] - 0.9) * (x[0] - 0.9);
    return std::min(local, global);
  };
  RandomRestartNelderMeadEstimator estimator;
  EstimationResult r =
      estimator.Estimate(two_wells, UnitBox(1), Budget(4000));
  EXPECT_NEAR(r.best_params[0], 0.9, 0.05);
}

TEST(SimulatedAnnealingTest, CustomConfigWorks) {
  SimulatedAnnealingEstimator::Config cfg;
  cfg.initial_temperature = 2.0;
  cfg.cooling = 0.99;
  cfg.step_scale = 0.2;
  SimulatedAnnealingEstimator estimator(cfg);
  EstimationResult r =
      estimator.Estimate(Quadratic, UnitBox(2), Budget(3000));
  EXPECT_LT(r.best_value, 0.02);
}

}  // namespace
}  // namespace mirabel::forecasting
