#include "forecasting/egrv_model.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "datagen/energy_series_generator.h"
#include "datagen/weather_generator.h"

namespace mirabel::forecasting {
namespace {

struct EgrvFixtureData {
  std::vector<double> values;
  ExogenousData exog;
};

/// Demand + temperature series of `days` days at 48 periods/day, with the
/// deterministic holiday calendar.
EgrvFixtureData MakeData(int days, uint64_t seed = 7) {
  datagen::DemandSeriesConfig dcfg;
  dcfg.days = days;
  dcfg.seed = seed;
  datagen::WeatherConfig wcfg;
  wcfg.days = days;
  wcfg.seed = seed + 1;
  EgrvFixtureData out;
  out.values = datagen::GenerateDemandSeries(dcfg);
  out.exog.temperature_c = datagen::GenerateTemperatureSeries(wcfg);
  out.exog.holiday.resize(out.values.size());
  for (size_t t = 0; t < out.values.size(); ++t) {
    out.exog.holiday[t] =
        datagen::IsHolidayDayOfYear(static_cast<int>(t / 48));
  }
  return out;
}

TEST(EgrvModelTest, RejectsShortSeries) {
  EgrvModel model(48);
  auto data = MakeData(10);
  EXPECT_FALSE(
      model.Fit(TimeSeries(data.values, 48), data.exog).ok());
}

TEST(EgrvModelTest, RejectsExogMismatch) {
  EgrvModel model(48);
  auto data = MakeData(30);
  data.exog.temperature_c.pop_back();
  EXPECT_FALSE(model.Fit(TimeSeries(data.values, 48), data.exog).ok());
}

TEST(EgrvModelTest, ForecastBeforeFitFails) {
  EgrvModel model(48);
  EXPECT_FALSE(model.Forecast(10, {}, {}).ok());
}

TEST(EgrvModelTest, FitsAndForecastsDemand) {
  EgrvModel model(48);
  auto data = MakeData(36);
  const size_t holdout = 48;
  std::vector<double> train(data.values.begin(),
                            data.values.end() - holdout);
  ExogenousData train_exog;
  train_exog.temperature_c.assign(data.exog.temperature_c.begin(),
                                  data.exog.temperature_c.end() - holdout);
  train_exog.holiday.assign(data.exog.holiday.begin(),
                            data.exog.holiday.end() - holdout);
  ASSERT_TRUE(model.Fit(TimeSeries(train, 48), train_exog).ok());
  EXPECT_TRUE(model.fitted());

  std::vector<double> future_temp(data.exog.temperature_c.end() - holdout,
                                  data.exog.temperature_c.end());
  std::vector<bool> future_holiday(data.exog.holiday.end() - holdout,
                                   data.exog.holiday.end());
  auto forecast = model.Forecast(holdout, future_temp, future_holiday);
  ASSERT_TRUE(forecast.ok());
  std::vector<double> actual(data.values.end() - holdout, data.values.end());
  auto smape = Smape(actual, *forecast);
  ASSERT_TRUE(smape.ok());
  EXPECT_LT(*smape, 0.05);  // multi-equation regression tracks the shape
}

TEST(EgrvModelTest, ParallelFitMatchesSequential) {
  auto data = MakeData(30);
  TimeSeries series(data.values, 48);
  EgrvModel seq(48);
  EgrvModel par(48);
  ASSERT_TRUE(seq.Fit(series, data.exog).ok());
  ASSERT_TRUE(par.FitParallel(series, data.exog, 4).ok());
  for (int p = 0; p < 48; ++p) {
    auto a = seq.Coefficients(p);
    auto b = par.Coefficients(p);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t c = 0; c < a->size(); ++c) {
      EXPECT_DOUBLE_EQ((*a)[c], (*b)[c]) << "period " << p << " coeff " << c;
    }
  }
}

TEST(EgrvModelTest, InvalidThreadCountRejected) {
  auto data = MakeData(30);
  EgrvModel model(48);
  EXPECT_FALSE(
      model.FitParallel(TimeSeries(data.values, 48), data.exog, 0).ok());
}

TEST(EgrvModelTest, ForecastNeedsFutureExogenous) {
  auto data = MakeData(30);
  EgrvModel model(48);
  ASSERT_TRUE(model.Fit(TimeSeries(data.values, 48), data.exog).ok());
  EXPECT_FALSE(model.Forecast(48, {1.0}, {false}).ok());
  EXPECT_FALSE(model.Forecast(0, {}, {}).ok());
}

TEST(EgrvModelTest, CoefficientsOutOfRangeRejected) {
  auto data = MakeData(30);
  EgrvModel model(48);
  ASSERT_TRUE(model.Fit(TimeSeries(data.values, 48), data.exog).ok());
  EXPECT_FALSE(model.Coefficients(-1).ok());
  EXPECT_FALSE(model.Coefficients(48).ok());
  EXPECT_TRUE(model.Coefficients(0).ok());
}

TEST(EgrvModelTest, RecoversPlantedLinearStructure) {
  // Series generated exactly from the EGRV regressors: the per-period OLS
  // must reproduce a near-perfect forecast.
  Rng rng(5);
  const int ppd = 24;
  const int days = 40;
  const size_t n = static_cast<size_t>(ppd) * days;
  std::vector<double> temp(n);
  std::vector<bool> holiday(n, false);
  std::vector<double> values(n, 0.0);
  for (size_t t = 0; t < n; ++t) {
    temp[t] = rng.Uniform(-5.0, 25.0);
  }
  const size_t week = 7 * ppd;
  for (size_t t = 0; t < n; ++t) {
    double base = 100.0 + 3.0 * (t % ppd);
    double lag_d = t >= static_cast<size_t>(ppd) ? values[t - ppd] : base;
    double lag_w = t >= week ? values[t - week] : base;
    values[t] = 20.0 + 0.4 * lag_d + 0.3 * lag_w + 0.8 * temp[t] +
                0.02 * temp[t] * temp[t];
  }
  ExogenousData exog{temp, holiday};
  EgrvModel model(ppd);
  ASSERT_TRUE(model.Fit(TimeSeries(values, ppd), exog).ok());

  // One-step-style check: forecast one day using known future temperature
  // (constructed the same way).
  std::vector<double> future_temp(static_cast<size_t>(ppd), 10.0);
  std::vector<bool> future_holiday(static_cast<size_t>(ppd), false);
  auto forecast = model.Forecast(ppd, future_temp, future_holiday);
  ASSERT_TRUE(forecast.ok());
  // Expected continuation computed with the true coefficients.
  std::vector<double> extended = values;
  for (int h = 0; h < ppd; ++h) {
    size_t t = n + static_cast<size_t>(h);
    double v = 20.0 + 0.4 * extended[t - ppd] + 0.3 * extended[t - week] +
               0.8 * 10.0 + 0.02 * 100.0;
    extended.push_back(v);
  }
  for (int h = 0; h < ppd; ++h) {
    EXPECT_NEAR((*forecast)[static_cast<size_t>(h)],
                extended[n + static_cast<size_t>(h)],
                0.05 * std::fabs(extended[n + static_cast<size_t>(h)]));
  }
}

}  // namespace
}  // namespace mirabel::forecasting
