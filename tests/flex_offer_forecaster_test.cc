#include "forecasting/flex_offer_forecaster.h"

#include <gtest/gtest.h>

#include "flexoffer/time_slice.h"

namespace mirabel::forecasting {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferBuilder;
using flexoffer::kSlicesPerDay;

/// A repeating daily pattern of offers over `days` days: every day one offer
/// at 08:00 (2 slices, [1,2] kWh each) and one at 19:00 (1 slice, [3,4]).
std::vector<FlexOffer> DailyOffers(int days) {
  std::vector<FlexOffer> out;
  uint64_t id = 1;
  for (int d = 0; d < days; ++d) {
    int64_t base = static_cast<int64_t>(d) * kSlicesPerDay;
    out.push_back(FlexOfferBuilder(id++)
                      .StartWindow(base + 32, base + 40)
                      .AddSlices(2, 1.0, 2.0)
                      .Build());
    out.push_back(FlexOfferBuilder(id++)
                      .StartWindow(base + 76, base + 80)
                      .AddSlice(3.0, 4.0)
                      .Build());
  }
  return out;
}

TEST(FlexOfferForecasterTest, BuildSeriesSumsAnchoredProfiles) {
  auto offers = DailyOffers(1);
  auto [min_series, max_series] =
      FlexOfferForecaster::BuildSeries(offers, 0, kSlicesPerDay);
  ASSERT_EQ(min_series.size(), static_cast<size_t>(kSlicesPerDay));
  EXPECT_DOUBLE_EQ(min_series.at(32), 1.0);
  EXPECT_DOUBLE_EQ(min_series.at(33), 1.0);
  EXPECT_DOUBLE_EQ(max_series.at(33), 2.0);
  EXPECT_DOUBLE_EQ(min_series.at(76), 3.0);
  EXPECT_DOUBLE_EQ(max_series.at(76), 4.0);
  EXPECT_DOUBLE_EQ(min_series.at(50), 0.0);
}

TEST(FlexOfferForecasterTest, ClipsOutsideWindow) {
  auto offers = DailyOffers(2);
  auto [min_series, max_series] =
      FlexOfferForecaster::BuildSeries(offers, 0, kSlicesPerDay);
  // Day-2 offers fall outside [0, 96) and must not appear.
  EXPECT_EQ(min_series.size(), static_cast<size_t>(kSlicesPerDay));
  double total = 0.0;
  for (size_t i = 0; i < min_series.size(); ++i) total += min_series.at(i);
  EXPECT_DOUBLE_EQ(total, 2.0 + 3.0);
}

TEST(FlexOfferForecasterTest, ForecastBeforeTrainFails) {
  FlexOfferForecaster forecaster;
  EXPECT_FALSE(forecaster.Forecast(96).ok());
}

TEST(FlexOfferForecasterTest, ForecastsRepeatingPattern) {
  auto offers = DailyOffers(14);
  FlexOfferForecaster forecaster({kSlicesPerDay});
  ASSERT_TRUE(
      forecaster.Train(offers, 0, 14 * kSlicesPerDay, {0.1, 500, 3}).ok());
  auto bands = forecaster.Forecast(kSlicesPerDay);
  ASSERT_TRUE(bands.ok());
  ASSERT_EQ(bands->size(), static_cast<size_t>(kSlicesPerDay));
  // Pattern slices should forecast substantially more energy than the rest.
  EXPECT_GT((*bands)[32].max_kwh, 1.0);
  EXPECT_GT((*bands)[76].max_kwh, 2.0);
  EXPECT_LT((*bands)[50].max_kwh, 1.0);
  // Bands are sane everywhere.
  for (const auto& band : *bands) {
    EXPECT_GE(band.min_kwh, 0.0);
    EXPECT_GE(band.max_kwh, band.min_kwh);
  }
}

}  // namespace
}  // namespace mirabel::forecasting
