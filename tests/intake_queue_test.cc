// Tests of the MPSC IntakeQueue, the streaming-intake channel into a
// ShardedEdmsRuntime shard: per-producer FIFO, cross-thread visibility of
// the batch payloads, and loss-free operation under producer contention.
//
// The CI thread-sanitizer job runs this suite.
#include "edms/intake_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "test_util.h"

namespace mirabel::edms {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferId;
using flexoffer::TimeSlice;

IntakeBatch MakeBatch(FlexOfferId id, TimeSlice now) {
  IntakeBatch batch;
  batch.offers.push_back(testutil::SampleOffer(id));
  batch.now = now;
  return batch;
}

TEST(IntakeQueueTest, StartsEmpty) {
  IntakeQueue queue;
  IntakeBatch batch;
  EXPECT_FALSE(queue.Pop(&batch));
}

TEST(IntakeQueueTest, PopsInPushOrder) {
  IntakeQueue queue;
  for (FlexOfferId id = 1; id <= 5; ++id) {
    queue.Push(MakeBatch(id, static_cast<TimeSlice>(id * 10)));
  }
  for (FlexOfferId id = 1; id <= 5; ++id) {
    IntakeBatch batch;
    ASSERT_TRUE(queue.Pop(&batch));
    ASSERT_EQ(batch.offers.size(), 1u);
    EXPECT_EQ(batch.offers[0].id, id);
    EXPECT_EQ(batch.now, static_cast<TimeSlice>(id * 10));
  }
  IntakeBatch batch;
  EXPECT_FALSE(queue.Pop(&batch));
}

TEST(IntakeQueueTest, DrainAppendsEverything) {
  IntakeQueue queue;
  for (FlexOfferId id = 1; id <= 3; ++id) queue.Push(MakeBatch(id, 0));
  std::vector<IntakeBatch> out;
  out.push_back(MakeBatch(99, 0));  // pre-existing content is kept
  EXPECT_EQ(queue.Drain(&out), 3u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].offers[0].id, 99u);
  EXPECT_EQ(out[3].offers[0].id, 3u);
  EXPECT_EQ(queue.Drain(&out), 0u);
}

TEST(IntakeQueueTest, QueueIsReusableAfterDrain) {
  IntakeQueue queue;
  queue.Push(MakeBatch(1, 0));
  std::vector<IntakeBatch> out;
  EXPECT_EQ(queue.Drain(&out), 1u);
  queue.Push(MakeBatch(2, 0));
  EXPECT_EQ(queue.Drain(&out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].offers[0].id, 2u);
}

TEST(IntakeQueueTest, ConcurrentProducersLoseNothingAndKeepTheirOrder) {
  // 4 producers push disjoint id ranges while the consumer drains
  // concurrently: every batch must arrive exactly once, and each producer's
  // own batches must come out in its push order (MPSC guarantees
  // per-producer FIFO, nothing across producers).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  IntakeQueue queue;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        FlexOfferId id = static_cast<FlexOfferId>(p) * 1000000u +
                         static_cast<FlexOfferId>(i);
        queue.Push(MakeBatch(id, static_cast<TimeSlice>(i)));
      }
    });
  }

  std::vector<IntakeBatch> drained;
  while (drained.size() <
         static_cast<size_t>(kProducers) * static_cast<size_t>(kPerProducer)) {
    if (queue.Drain(&drained) == 0) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  // Producers are joined and everything reachable is drained: no stragglers.
  EXPECT_EQ(queue.Drain(&drained), 0u);

  std::set<FlexOfferId> seen;
  std::vector<TimeSlice> last_seq(kProducers, -1);
  for (const IntakeBatch& batch : drained) {
    ASSERT_EQ(batch.offers.size(), 1u);
    FlexOfferId id = batch.offers[0].id;
    EXPECT_TRUE(seen.insert(id).second) << "duplicate batch " << id;
    size_t producer = static_cast<size_t>(id / 1000000u);
    ASSERT_LT(producer, static_cast<size_t>(kProducers));
    EXPECT_GT(batch.now, last_seq[producer]) << "producer order violated";
    last_seq[producer] = batch.now;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers) *
                             static_cast<size_t>(kPerProducer));
}

}  // namespace
}  // namespace mirabel::edms
