#include "node/message_bus.h"

#include <gtest/gtest.h>

namespace mirabel::node {
namespace {

Message Ping(NodeId from, NodeId to, flexoffer::TimeSlice at) {
  Message m;
  m.type = MessageType::kMeasurement;
  m.from = from;
  m.to = to;
  m.sent_at = at;
  return m;
}

TEST(MessageBusTest, DeliversToRegisteredHandler) {
  MessageBus bus;
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 0)).ok());
  bus.AdvanceTo(0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.delivered(), 1);
  EXPECT_EQ(bus.sent(), 1);
}

TEST(MessageBusTest, DuplicateRegistrationRejected) {
  MessageBus bus;
  ASSERT_TRUE(bus.Register(1, [](const Message&) {}).ok());
  EXPECT_EQ(bus.Register(1, [](const Message&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(MessageBusTest, UnknownRecipientFailsAtSend) {
  MessageBus bus;
  EXPECT_EQ(bus.Send(Ping(1, 9, 0)).code(), StatusCode::kNotFound);
}

TEST(MessageBusTest, LatencyDelaysDelivery) {
  MessageBus::Config cfg;
  cfg.latency_slices = 3;
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 10)).ok());
  bus.AdvanceTo(12);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.pending(), 1u);
  bus.AdvanceTo(13);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.pending(), 0u);
}

TEST(MessageBusTest, PreservesSendOrder) {
  MessageBus bus;
  std::vector<NodeId> order;
  ASSERT_TRUE(bus.Register(1, [&order](const Message& m) {
                   order.push_back(m.from);
                 }).ok());
  for (NodeId from = 10; from < 15; ++from) {
    ASSERT_TRUE(bus.Send(Ping(from, 1, 0)).ok());
  }
  bus.AdvanceTo(0);
  EXPECT_EQ(order, (std::vector<NodeId>{10, 11, 12, 13, 14}));
}

TEST(MessageBusTest, DropsConfiguredFraction) {
  MessageBus::Config cfg;
  cfg.drop_probability = 0.5;
  cfg.seed = 3;
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(bus.Send(Ping(2, 1, 0)).ok());
  }
  bus.AdvanceTo(0);
  EXPECT_EQ(received + bus.dropped(), 1000);
  EXPECT_GT(bus.dropped(), 400);
  EXPECT_LT(bus.dropped(), 600);
}

TEST(MessageBusTest, HandlersCanSendCascades) {
  MessageBus bus;
  int leaf_received = 0;
  ASSERT_TRUE(bus.Register(2, [&leaf_received](const Message&) {
                   ++leaf_received;
                 }).ok());
  ASSERT_TRUE(bus.Register(1, [&bus](const Message& m) {
                   // Relay to node 2 at the same slice.
                   Message relay = m;
                   relay.from = 1;
                   relay.to = 2;
                   (void)bus.Send(relay);
                 }).ok());
  ASSERT_TRUE(bus.Send(Ping(9, 1, 5)).ok());
  bus.AdvanceTo(5);
  EXPECT_EQ(leaf_received, 1);
  EXPECT_EQ(bus.delivered(), 2);
}

TEST(MessageBusTest, FutureMessagesStayQueued) {
  MessageBus bus;
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 100)).ok());
  bus.AdvanceTo(50);
  EXPECT_EQ(received, 0);
  bus.AdvanceTo(100);
  EXPECT_EQ(received, 1);
}

TEST(MessageBusTest, SeededDropsAreDeterministic) {
  // Same seed + same send sequence => bit-identical delivered/dropped sets.
  auto delivered_set = [](uint64_t seed) {
    MessageBus::Config cfg;
    cfg.drop_probability = 0.3;
    cfg.seed = seed;
    MessageBus bus(cfg);
    std::vector<uint64_t> delivered;
    EXPECT_TRUE(bus.Register(1, [&delivered](const Message& m) {
                     delivered.push_back(m.offer_id);
                   }).ok());
    for (uint64_t i = 0; i < 200; ++i) {
      Message m = Ping(2, 1, static_cast<flexoffer::TimeSlice>(i / 10));
      m.offer_id = i;
      EXPECT_TRUE(bus.Send(m).ok());
    }
    bus.AdvanceTo(100);
    return delivered;
  };
  std::vector<uint64_t> a = delivered_set(11);
  EXPECT_EQ(a, delivered_set(11));
  EXPECT_NE(a, delivered_set(12));  // and the seed actually matters
}

TEST(MessageBusTest, DropWindowDropsEverythingInside) {
  MessageBus::Config cfg;
  cfg.faults.drop_windows.push_back({10, 20, 1.0});
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 9)).ok());    // before the window
  ASSERT_TRUE(bus.Send(Ping(2, 1, 10)).ok());   // inside (inclusive from)
  ASSERT_TRUE(bus.Send(Ping(2, 1, 19)).ok());   // inside
  ASSERT_TRUE(bus.Send(Ping(2, 1, 20)).ok());   // after (exclusive to)
  bus.AdvanceTo(30);
  EXPECT_EQ(received, 2);
  EXPECT_EQ(bus.dropped(), 2);
  EXPECT_EQ(bus.dropped_by_fault(), 2);
}

TEST(MessageBusTest, BlackoutDropsBothDirections) {
  MessageBus::Config cfg;
  cfg.faults.blackouts.push_back({1, 0, 50});
  MessageBus bus(cfg);
  int at_1 = 0;
  int at_2 = 0;
  ASSERT_TRUE(bus.Register(1, [&at_1](const Message&) { ++at_1; }).ok());
  ASSERT_TRUE(bus.Register(2, [&at_2](const Message&) { ++at_2; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 10)).ok());  // towards the dark node
  ASSERT_TRUE(bus.Send(Ping(1, 2, 10)).ok());  // from the dark node
  ASSERT_TRUE(bus.Send(Ping(2, 1, 60)).ok());  // after the blackout lifts
  bus.AdvanceTo(60);
  EXPECT_EQ(at_1, 1);
  EXPECT_EQ(at_2, 0);
  EXPECT_EQ(bus.dropped_by_fault(), 2);
}

TEST(MessageBusTest, PartitionDropsOnlyCrossingTraffic) {
  MessageBus::Config cfg;
  cfg.faults.partitions.push_back({{1, 2}, 0, 100});
  MessageBus bus(cfg);
  std::vector<NodeId> reached;
  for (NodeId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(bus.Register(id, [&reached, id](const Message&) {
                     reached.push_back(id);
                   }).ok());
  }
  ASSERT_TRUE(bus.Send(Ping(1, 2, 10)).ok());  // within the island
  ASSERT_TRUE(bus.Send(Ping(3, 4, 10)).ok());  // within the mainland
  ASSERT_TRUE(bus.Send(Ping(1, 3, 10)).ok());  // crossing: dropped
  ASSERT_TRUE(bus.Send(Ping(4, 2, 10)).ok());  // crossing: dropped
  bus.AdvanceTo(10);
  EXPECT_EQ(reached, (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(bus.dropped_by_fault(), 2);
}

TEST(MessageBusTest, LatencySpikeDelaysWindowedSends) {
  MessageBus::Config cfg;
  cfg.latency_slices = 1;
  cfg.faults.latency_spikes.push_back({10, 20, 5});
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 10)).ok());  // due 10 + 1 + 5 = 16
  bus.AdvanceTo(15);
  EXPECT_EQ(received, 0);
  bus.AdvanceTo(16);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.dropped(), 0);
}

TEST(MessageBusTest, ReportBacklogCountsUndelivered) {
  MessageBus bus;
  ASSERT_TRUE(bus.Register(1, [](const Message&) {}).ok());
  EXPECT_EQ(bus.ReportBacklog(), 0u);
  ASSERT_TRUE(bus.Send(Ping(2, 1, 100)).ok());
  bus.AdvanceTo(50);  // not due yet
  EXPECT_EQ(bus.ReportBacklog(), 1u);  // also logs a warning
  bus.AdvanceTo(100);
  EXPECT_EQ(bus.ReportBacklog(), 0u);
}

}  // namespace
}  // namespace mirabel::node
