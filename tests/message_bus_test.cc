#include "node/message_bus.h"

#include <gtest/gtest.h>

namespace mirabel::node {
namespace {

Message Ping(NodeId from, NodeId to, flexoffer::TimeSlice at) {
  Message m;
  m.type = MessageType::kMeasurement;
  m.from = from;
  m.to = to;
  m.sent_at = at;
  return m;
}

TEST(MessageBusTest, DeliversToRegisteredHandler) {
  MessageBus bus;
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 0)).ok());
  bus.AdvanceTo(0);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.delivered(), 1);
  EXPECT_EQ(bus.sent(), 1);
}

TEST(MessageBusTest, DuplicateRegistrationRejected) {
  MessageBus bus;
  ASSERT_TRUE(bus.Register(1, [](const Message&) {}).ok());
  EXPECT_EQ(bus.Register(1, [](const Message&) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(MessageBusTest, UnknownRecipientFailsAtSend) {
  MessageBus bus;
  EXPECT_EQ(bus.Send(Ping(1, 9, 0)).code(), StatusCode::kNotFound);
}

TEST(MessageBusTest, LatencyDelaysDelivery) {
  MessageBus::Config cfg;
  cfg.latency_slices = 3;
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 10)).ok());
  bus.AdvanceTo(12);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(bus.pending(), 1u);
  bus.AdvanceTo(13);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.pending(), 0u);
}

TEST(MessageBusTest, PreservesSendOrder) {
  MessageBus bus;
  std::vector<NodeId> order;
  ASSERT_TRUE(bus.Register(1, [&order](const Message& m) {
                   order.push_back(m.from);
                 }).ok());
  for (NodeId from = 10; from < 15; ++from) {
    ASSERT_TRUE(bus.Send(Ping(from, 1, 0)).ok());
  }
  bus.AdvanceTo(0);
  EXPECT_EQ(order, (std::vector<NodeId>{10, 11, 12, 13, 14}));
}

TEST(MessageBusTest, DropsConfiguredFraction) {
  MessageBus::Config cfg;
  cfg.drop_probability = 0.5;
  cfg.seed = 3;
  MessageBus bus(cfg);
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(bus.Send(Ping(2, 1, 0)).ok());
  }
  bus.AdvanceTo(0);
  EXPECT_EQ(received + bus.dropped(), 1000);
  EXPECT_GT(bus.dropped(), 400);
  EXPECT_LT(bus.dropped(), 600);
}

TEST(MessageBusTest, HandlersCanSendCascades) {
  MessageBus bus;
  int leaf_received = 0;
  ASSERT_TRUE(bus.Register(2, [&leaf_received](const Message&) {
                   ++leaf_received;
                 }).ok());
  ASSERT_TRUE(bus.Register(1, [&bus](const Message& m) {
                   // Relay to node 2 at the same slice.
                   Message relay = m;
                   relay.from = 1;
                   relay.to = 2;
                   (void)bus.Send(relay);
                 }).ok());
  ASSERT_TRUE(bus.Send(Ping(9, 1, 5)).ok());
  bus.AdvanceTo(5);
  EXPECT_EQ(leaf_received, 1);
  EXPECT_EQ(bus.delivered(), 2);
}

TEST(MessageBusTest, FutureMessagesStayQueued) {
  MessageBus bus;
  int received = 0;
  ASSERT_TRUE(bus.Register(1, [&received](const Message&) { ++received; }).ok());
  ASSERT_TRUE(bus.Send(Ping(2, 1, 100)).ok());
  bus.AdvanceTo(50);
  EXPECT_EQ(received, 0);
  bus.AdvanceTo(100);
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace mirabel::node
