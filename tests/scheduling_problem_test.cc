#include "scheduling/scheduling_problem.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "scheduling/scenario.h"

namespace mirabel::scheduling {
namespace {

using flexoffer::FlexOffer;
using flexoffer::FlexOfferBuilder;

/// Two-slice horizon, one offer, hand-checkable numbers.
SchedulingProblem TinyProblem() {
  SchedulingProblem p;
  p.horizon_start = 0;
  p.horizon_length = 4;
  p.baseline_imbalance_kwh = {2.0, -3.0, 0.0, 1.0};
  p.imbalance_penalty_eur = {1.0, 1.0, 1.0, 1.0};
  p.market.buy_price_eur = {0.5, 0.5, 0.5, 0.5};
  p.market.sell_price_eur = {0.2, 0.2, 0.2, 0.2};
  p.market.max_buy_kwh = 1.0;
  p.market.max_sell_kwh = 1.0;
  FlexOffer fo = FlexOfferBuilder(1)
                     .StartWindow(0, 2)
                     .AddSlice(1.0, 2.0)
                     .AddSlice(1.0, 1.0)
                     .Build();
  p.offers.push_back(fo);
  return p;
}

TEST(SchedulingProblemTest, ValidProblemValidates) {
  EXPECT_TRUE(TinyProblem().Validate().ok());
}

TEST(SchedulingProblemTest, RejectsBadHorizon) {
  SchedulingProblem p = TinyProblem();
  p.horizon_length = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SchedulingProblemTest, RejectsVectorSizeMismatch) {
  SchedulingProblem p = TinyProblem();
  p.imbalance_penalty_eur.pop_back();
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SchedulingProblemTest, RejectsOfferOutsideHorizon) {
  SchedulingProblem p = TinyProblem();
  p.offers[0].latest_start = 3;  // profile would end at slice 5 > 4
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CostEvaluatorTest, DefaultScheduleIsEarliestMaxFill) {
  SchedulingProblem p = TinyProblem();
  CostEvaluator eval(p);
  EXPECT_EQ(eval.schedule().assignments[0].start, 0);
  EXPECT_DOUBLE_EQ(eval.schedule().assignments[0].fill, 1.0);
}

TEST(CostEvaluatorTest, HandComputedCost) {
  SchedulingProblem p = TinyProblem();
  CostEvaluator eval(p);
  // Offer at start 0, fill 1: energies 2,1 -> net = {4, -2, 0, 1}.
  // Slice 0: deficit 4, buy 1 @0.5, remaining 3 @1.0      -> 0.5 + 3.0
  // Slice 1: surplus 2, sell 1 @0.2 (revenue), 1 penalty  -> -0.2 + 1.0
  // Slice 2: balanced                                      -> 0
  // Slice 3: deficit 1, buy 1 @0.5                         -> 0.5
  // Activation: unit price 0 -> 0.
  ScheduleCost cost = eval.Cost();
  EXPECT_NEAR(cost.market_eur, 0.5 - 0.2 + 0.5, 1e-9);
  EXPECT_NEAR(cost.imbalance_eur, 3.0 + 1.0, 1e-9);
  EXPECT_NEAR(cost.flex_activation_eur, 0.0, 1e-9);
  EXPECT_NEAR(cost.total(), 4.8, 1e-9);
}

TEST(CostEvaluatorTest, ActivationCostUsesUnitPrice) {
  SchedulingProblem p = TinyProblem();
  p.offers[0].unit_price_eur = 0.1;
  CostEvaluator eval(p);
  // 3 kWh scheduled at 0.1 EUR/kWh.
  EXPECT_NEAR(eval.Cost().flex_activation_eur, 0.3, 1e-9);
}

TEST(CostEvaluatorTest, MovingOfferToSurplusSliceReducesCost) {
  SchedulingProblem p = TinyProblem();
  CostEvaluator eval(p);
  double before = eval.Cost().total();
  // Start 1 puts the big slice onto the surplus: net = {2, -1, 1, 1}.
  ASSERT_TRUE(eval.ApplyMove(0, {1, 1.0}).ok());
  EXPECT_LT(eval.Cost().total(), before);
}

TEST(CostEvaluatorTest, SetScheduleRejectsInfeasible) {
  SchedulingProblem p = TinyProblem();
  CostEvaluator eval(p);
  Schedule s;
  s.assignments = {{3, 1.0}};  // start after latest_start
  EXPECT_FALSE(eval.SetSchedule(s).ok());
  s.assignments = {{1, 1.5}};  // fill > 1
  EXPECT_FALSE(eval.SetSchedule(s).ok());
  s.assignments = {{1, 0.5}, {0, 1.0}};  // wrong count
  EXPECT_FALSE(eval.SetSchedule(s).ok());
}

TEST(CostEvaluatorTest, TryMoveMatchesFullReevaluation) {
  ScenarioConfig cfg;
  cfg.num_offers = 30;
  cfg.seed = 91;
  SchedulingProblem p = MakeScenario(cfg);
  ASSERT_TRUE(p.Validate().ok());
  CostEvaluator eval(p);
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    size_t i = rng.Index(p.offers.size());
    const FlexOffer& fo = p.offers[i];
    OfferAssignment candidate{
        fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
        rng.NextDouble()};
    auto delta = eval.TryMove(i, candidate);
    ASSERT_TRUE(delta.ok());

    Schedule moved = eval.schedule();
    moved.assignments[i] = candidate;
    auto full = eval.EvaluateTotal(moved);
    ASSERT_TRUE(full.ok());
    EXPECT_NEAR(eval.Cost().total() + *delta, *full, 1e-6)
        << "trial " << trial;
    // Occasionally apply the move so the walk covers many states.
    if (trial % 3 == 0) {
      ASSERT_TRUE(eval.ApplyMove(i, candidate).ok());
    }
  }
}

TEST(CostEvaluatorTest, TryMoveRejectsInfeasible) {
  SchedulingProblem p = TinyProblem();
  CostEvaluator eval(p);
  EXPECT_FALSE(eval.TryMove(0, {5, 1.0}).ok());
  EXPECT_FALSE(eval.TryMove(0, {1, 1.2}).ok());
  EXPECT_FALSE(eval.TryMove(3, {0, 1.0}).ok());
}

TEST(CostEvaluatorTest, ToScheduledOffersValidates) {
  ScenarioConfig cfg;
  cfg.num_offers = 25;
  cfg.seed = 92;
  cfg.production_fraction = 0.4;
  SchedulingProblem p = MakeScenario(cfg);
  CostEvaluator eval(p);
  Rng rng(3);
  for (size_t i = 0; i < p.offers.size(); ++i) {
    ASSERT_TRUE(eval.ApplyMove(i, {p.offers[i].earliest_start +
                                       rng.UniformInt(0, p.offers[i]
                                                             .TimeFlexibility()),
                                   rng.NextDouble()})
                    .ok());
  }
  auto scheduled = eval.ToScheduledOffers();
  ASSERT_EQ(scheduled.size(), p.offers.size());
  for (size_t i = 0; i < scheduled.size(); ++i) {
    EXPECT_TRUE(scheduled[i].ValidateAgainst(p.offers[i]).ok());
  }
}

TEST(CostEvaluatorTest, MarketCapsLimitTrades) {
  SchedulingProblem p = TinyProblem();
  p.market.max_buy_kwh = 0.0;
  p.market.max_sell_kwh = 0.0;
  CostEvaluator eval(p);
  // With no market access every deviation is imbalance: |4|+|2|+0+|1| = 7.
  ScheduleCost cost = eval.Cost();
  EXPECT_NEAR(cost.market_eur, 0.0, 1e-9);
  EXPECT_NEAR(cost.imbalance_eur, 7.0, 1e-9);
}

TEST(CostEvaluatorTest, ExpensiveBuyingIsSkipped) {
  SchedulingProblem p = TinyProblem();
  p.market.buy_price_eur = {2.0, 2.0, 2.0, 2.0};  // above the penalty
  CostEvaluator eval(p);
  ScheduleCost cost = eval.Cost();
  // No buying: slice 0 deficit 4 and slice 3 deficit 1 are pure imbalance;
  // slice 1 surplus still sells 1.
  EXPECT_NEAR(cost.market_eur, -0.2, 1e-9);
  EXPECT_NEAR(cost.imbalance_eur, 4.0 + 1.0 + 1.0, 1e-9);
}

}  // namespace
}  // namespace mirabel::scheduling
