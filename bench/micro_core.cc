// Google-benchmark micro-benchmarks of the hot operations under the paper's
// experiments: grouping-key computation and n-to-1 aggregation (Fig. 5),
// disaggregation (Fig. 5d), HWT model update/forecast (Fig. 4), and the
// scheduler's incremental cost evaluation (Fig. 6).
#include <benchmark/benchmark.h>

#include "gbench_json_reporter.h"

#include "aggregation/aggregated_flex_offer.h"
#include "aggregation/aggregation_params.h"
#include "common/rng.h"
#include "datagen/energy_series_generator.h"
#include "datagen/flex_offer_generator.h"
#include "forecasting/hwt_model.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

namespace {

using namespace mirabel;  // NOLINT: bench brevity

std::vector<flexoffer::FlexOffer> MakeOffers(int64_t n) {
  datagen::FlexOfferWorkloadConfig cfg;
  cfg.count = n;
  cfg.seed = 5;
  return datagen::GenerateFlexOffers(cfg);
}

void BM_GroupKey(benchmark::State& state) {
  auto offers = MakeOffers(1024);
  auto params = aggregation::AggregationParams::P3();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aggregation::MakeGroupKey(offers[i++ % offers.size()], params));
  }
}
BENCHMARK(BM_GroupKey);

void BM_BuildAggregate(benchmark::State& state) {
  auto offers = MakeOffers(state.range(0));
  for (auto _ : state) {
    auto agg = aggregation::BuildAggregate(1, offers);
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildAggregate)->Arg(16)->Arg(256)->Arg(4096);

void BM_AddMemberIncremental(benchmark::State& state) {
  auto offers = MakeOffers(4096);
  auto seed = aggregation::BuildAggregate(
      1, {offers.begin(), offers.begin() + 16});
  size_t i = 16;
  for (auto _ : state) {
    state.PauseTiming();
    aggregation::AggregatedFlexOffer agg = *seed;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        aggregation::AddMember(offers[i++ % offers.size()], &agg));
  }
}
BENCHMARK(BM_AddMemberIncremental);

void BM_Disaggregate(benchmark::State& state) {
  auto offers = MakeOffers(state.range(0));
  auto agg = aggregation::BuildAggregate(1, offers);
  flexoffer::ScheduledFlexOffer s;
  s.offer_id = 1;
  s.start = agg->macro.earliest_start;
  for (const auto& band : agg->macro.profile) {
    s.energies_kwh.push_back(0.5 * (band.min_kwh + band.max_kwh));
  }
  for (auto _ : state) {
    auto micro = aggregation::Disaggregate(*agg, s);
    benchmark::DoNotOptimize(micro);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Disaggregate)->Arg(16)->Arg(256)->Arg(4096);

void BM_HwtUpdate(benchmark::State& state) {
  datagen::DemandSeriesConfig cfg;
  cfg.periods_per_day = 48;
  cfg.days = 15;
  auto values = datagen::GenerateDemandSeries(cfg);
  forecasting::HwtModel model({48, 336});
  forecasting::TimeSeries series(values, 48);
  (void)model.FitWithParams(series, model.DefaultParams());
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Update(35000.0 + rng.Gaussian(0, 500)));
  }
}
BENCHMARK(BM_HwtUpdate);

void BM_HwtForecastDay(benchmark::State& state) {
  datagen::DemandSeriesConfig cfg;
  cfg.periods_per_day = 48;
  cfg.days = 15;
  auto values = datagen::GenerateDemandSeries(cfg);
  forecasting::HwtModel model({48, 336});
  forecasting::TimeSeries series(values, 48);
  (void)model.FitWithParams(series, model.DefaultParams());
  for (auto _ : state) {
    auto f = model.Forecast(48);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_HwtForecastDay);

void BM_HwtFit8Weeks(benchmark::State& state) {
  datagen::DemandSeriesConfig cfg;
  cfg.periods_per_day = 48;
  cfg.days = 56;
  auto values = datagen::GenerateDemandSeries(cfg);
  forecasting::HwtModel model({48, 336});
  forecasting::TimeSeries series(values, 48);
  auto params = model.DefaultParams();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.FitWithParams(series, params));
  }
}
BENCHMARK(BM_HwtFit8Weeks);

void BM_TryMove(benchmark::State& state) {
  scheduling::ScenarioConfig cfg;
  cfg.num_offers = static_cast<int>(state.range(0));
  auto problem = scheduling::MakeScenario(cfg);
  scheduling::CostEvaluator evaluator(problem);
  Rng rng(9);
  for (auto _ : state) {
    size_t i = rng.Index(problem.offers.size());
    const auto& fo = problem.offers[i];
    scheduling::OfferAssignment candidate{
        fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
        rng.NextDouble()};
    benchmark::DoNotOptimize(evaluator.TryMove(i, candidate));
  }
}
BENCHMARK(BM_TryMove)->Arg(100)->Arg(1000);

void BM_FullCostEval(benchmark::State& state) {
  scheduling::ScenarioConfig cfg;
  cfg.num_offers = static_cast<int>(state.range(0));
  auto problem = scheduling::MakeScenario(cfg);
  scheduling::CostEvaluator evaluator(problem);
  scheduling::Schedule schedule = evaluator.schedule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.EvaluateTotal(schedule));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullCostEval)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mirabel::bench::GBenchJsonReporter reporter("micro_core");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
