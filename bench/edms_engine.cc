// End-to-end throughput of the EdmsEngine facade: offers per second through
// the full submit -> negotiate -> aggregate -> schedule -> disaggregate round
// trip, driven exactly the way nodes drive the engine (batch intake, then
// tick-driven gate closures). Emits BENCH_edms_engine.json via the shared
// reporter.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_main.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"
#include "edms/edms_engine.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

struct RunResult {
  int64_t offers = 0;
  size_t accepted = 0;
  double intake_s = 0.0;
  double loop_s = 0.0;
  int64_t macros = 0;
  int64_t micro_schedules = 0;
  int64_t expired = 0;
  int64_t scheduling_runs = 0;
};

RunResult RunWorkload(int64_t count, int days) {
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = count;
  workload.seed = 1312;
  workload.horizon_days = days;
  std::vector<flexoffer::FlexOffer> offers =
      datagen::GenerateFlexOffers(workload);

  edms::EdmsEngine::Config config;
  config.actor = 100;
  config.negotiate = true;
  config.aggregation.params = aggregation::AggregationParams::P2();
  config.gate_period = 16;
  config.horizon = 2 * flexoffer::kSlicesPerDay;
  config.scheduler_budget_s = 0.02;
  config.seed = 11;
  config.baseline = std::make_shared<edms::VectorBaselineProvider>(
      std::vector<double>(
          static_cast<size_t>((days + 2) * flexoffer::kSlicesPerDay), 8.0));
  edms::EdmsEngine engine(config);

  RunResult r;
  r.offers = count;

  Stopwatch intake_watch;
  auto accepted = engine.SubmitOffers(offers, 0);
  if (!accepted.ok()) {
    std::cerr << "intake failed: " << accepted.status() << "\n";
    std::exit(1);
  }
  r.intake_s = intake_watch.ElapsedSeconds();
  r.accepted = *accepted;

  Stopwatch loop_watch;
  const flexoffer::TimeSlice end =
      static_cast<flexoffer::TimeSlice>(days + 1) * flexoffer::kSlicesPerDay;
  for (flexoffer::TimeSlice now = 0; now < end; now += config.gate_period) {
    if (Status st = engine.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      std::exit(1);
    }
    for (const edms::Event& event : engine.PollEvents()) {
      if (std::get_if<edms::MacroPublished>(&event) != nullptr) ++r.macros;
      if (std::get_if<edms::ScheduleAssigned>(&event) != nullptr) {
        ++r.micro_schedules;
      }
      if (std::get_if<edms::OfferExpired>(&event) != nullptr) ++r.expired;
    }
  }
  r.loop_s = loop_watch.ElapsedSeconds();
  r.scheduling_runs = engine.stats().scheduling_runs;
  return r;
}

}  // namespace

int main() {
  bool small = bench::SmallMode();
  std::vector<int64_t> counts =
      small ? std::vector<int64_t>{2000, 10000}
            : std::vector<int64_t>{10000, 50000, 200000};
  const int days = 2;

  bench::BenchReport report("edms_engine");
  report.AddConfig("days", static_cast<int64_t>(days));
  report.AddConfig("gate_period", static_cast<int64_t>(16));
  report.AddConfig("scheduler", std::string("GreedySearch"));
  report.AddConfig("small_mode", small);

  for (int64_t count : counts) {
    RunResult r = RunWorkload(count, days);
    double total_s = r.intake_s + r.loop_s;
    report.AddResult("roundtrip/" + std::to_string(count))
        .Wall(total_s)
        .Items(static_cast<double>(r.offers))
        .Metric("intake_s", r.intake_s)
        .Metric("control_loop_s", r.loop_s)
        .Metric("accepted", static_cast<double>(r.accepted))
        .Metric("macro_offers", static_cast<double>(r.macros))
        .Metric("micro_schedules", static_cast<double>(r.micro_schedules))
        .Metric("expired", static_cast<double>(r.expired))
        .Metric("scheduling_runs", static_cast<double>(r.scheduling_runs));
    std::printf(
        "%8lld offers: intake %.2fs, loop %.2fs -> %.0f offers/s "
        "(%lld macros, %lld micro schedules, %lld expired, %lld runs)\n",
        static_cast<long long>(count), r.intake_s, r.loop_s,
        static_cast<double>(r.offers) / std::max(1e-9, total_s),
        static_cast<long long>(r.macros),
        static_cast<long long>(r.micro_schedules),
        static_cast<long long>(r.expired),
        static_cast<long long>(r.scheduling_runs));
  }

  std::string path = report.WriteFile();
  if (path.empty()) {
    std::cerr << "failed to write bench report\n";
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
