// Measures the scheduling kernel (CompiledProblem / ScheduleWorkspace)
// against the preserved pre-kernel evaluator (ReferenceCostEvaluator) on the
// two hot paths that bound anytime-scheduler quality:
//
//   child-evaluate: full evaluation of a fresh schedule — the EA's per-child
//     cost. Old path: construct a scratch evaluator (two vector allocations
//     plus a thrown-away default-schedule accumulation) and re-set the
//     schedule. Kernel path: EvaluateInto() on a pooled workspace.
//   trymove-scan: the greedy's candidate scan — every (start, fill) of an
//     offer evaluated against the incumbent. Old path: AoS TryMove
//     recomputing slice energies per candidate. Kernel path:
//     TryMoveWithEnergies() with per-(offer, fill) energy vectors computed
//     once and slid across starts.
//
// Emits BENCH_scheduler_kernel.json with evaluations/sec per path and size
// plus the kernel/reference speedups (acceptance: >= 3x child-evaluate,
// >= 1.5x trymove-scan in a Release build).
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "bench_main.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/reference_evaluator.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

namespace {

SchedulingProblem MakeProblem(int offers) {
  ScenarioConfig cfg;
  cfg.num_offers = offers;
  cfg.seed = 23 + static_cast<uint64_t>(offers);
  cfg.imbalance_amplitude_kwh = 4.0 * offers;
  cfg.max_buy_kwh = 0.8 * offers;
  cfg.max_sell_kwh = 0.8 * offers;
  return MakeScenario(cfg);
}

std::vector<Schedule> RandomSchedules(const SchedulingProblem& p, int count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Schedule> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Schedule s;
    s.assignments.reserve(p.offers.size());
    for (const auto& fo : p.offers) {
      s.assignments.push_back(
          {fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
           rng.NextDouble()});
    }
    out.push_back(std::move(s));
  }
  return out;
}

struct PathResult {
  double wall_s = 0.0;
  double evals = 0.0;
  double sink = 0.0;  // defeats dead-code elimination
  double per_sec() const { return evals / wall_s; }
};

PathResult ChildEvaluateReference(const SchedulingProblem& p,
                                  const std::vector<Schedule>& schedules,
                                  int reps) {
  ReferenceCostEvaluator evaluator(p);
  PathResult r;
  r.sink += *evaluator.EvaluateTotal(schedules[0]);  // warmup
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Schedule& s : schedules) {
      r.sink += *evaluator.EvaluateTotal(s);
      r.evals += 1.0;
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

PathResult ChildEvaluateKernel(const SchedulingProblem& p,
                               const std::vector<Schedule>& schedules,
                               int reps) {
  CompiledProblem cp(p);
  ScheduleWorkspace pool(cp);
  PathResult r;
  r.sink += *pool.EvaluateInto(cp, schedules[0]);  // warmup
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Schedule& s : schedules) {
      r.sink += *pool.EvaluateInto(cp, s);
      r.evals += 1.0;
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

/// One full greedy-style candidate scan over all offers: every start
/// candidate (capped like GreedyScheduler) x every fill in {0, 0.5, 1}.
constexpr int kMaxStartCandidates = 64;
constexpr double kFills[] = {0.0, 0.5, 1.0};

PathResult TryMoveScanReference(const SchedulingProblem& p, int reps) {
  ReferenceCostEvaluator evaluator(p);
  PathResult r;
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < p.offers.size(); ++i) {
      const auto& fo = p.offers[i];
      int64_t window = fo.TimeFlexibility();
      int64_t step_count = std::min<int64_t>(window, kMaxStartCandidates - 1);
      for (int64_t c = 0; c <= step_count; ++c) {
        flexoffer::TimeSlice start =
            fo.earliest_start +
            (step_count == 0 ? 0 : window * c / step_count);
        for (double fill : kFills) {
          r.sink += *evaluator.TryMove(i, {start, fill});
          r.evals += 1.0;
        }
      }
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

PathResult TryMoveScanKernel(const SchedulingProblem& p, int reps) {
  CompiledProblem cp(p);
  ScheduleWorkspace ws(cp);
  const size_t dur_cap = static_cast<size_t>(cp.max_duration);
  const size_t num_fills = std::size(kFills);
  std::vector<double> e_cur(dur_cap);
  std::vector<double> e_fill(num_fills * dur_cap);
  PathResult r;
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < cp.num_offers; ++i) {
      const size_t dur = static_cast<size_t>(cp.duration[i]);
      ws.ComputeEnergies(cp, i, ws.fill(i), e_cur);
      for (size_t f = 0; f < num_fills; ++f) {
        ws.ComputeEnergies(cp, i, kFills[f],
                           {e_fill.data() + f * dur_cap, dur_cap});
      }
      int64_t window = cp.latest_start[i] - cp.earliest_start[i];
      int64_t step_count = std::min<int64_t>(window, kMaxStartCandidates - 1);
      for (int64_t c = 0; c <= step_count; ++c) {
        flexoffer::TimeSlice start =
            cp.earliest_start[i] +
            (step_count == 0 ? 0 : window * c / step_count);
        for (size_t f = 0; f < num_fills; ++f) {
          r.sink += ws.TryMoveWithEnergies(
              cp, i, start, {e_cur.data(), dur},
              {e_fill.data() + f * dur_cap, dur});
          r.evals += 1.0;
        }
      }
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

}  // namespace

/// Runs `measure` `trials` times and keeps the best-throughput run (the
/// usual throughput methodology: the minimum-interference trial is the one
/// closest to the code's actual speed on a noisy box).
template <typename Fn>
PathResult BestOf(int trials, Fn measure) {
  PathResult best = measure();
  for (int t = 1; t < trials; ++t) {
    PathResult r = measure();
    if (r.per_sec() > best.per_sec()) best = r;
  }
  return best;
}

int main() {
  const bool small = mirabel::bench::SmallMode();
  const int trials = small ? 1 : 3;

  bench::BenchReport report("scheduler_kernel");
  report.AddConfig("small_mode", small);
  report.AddConfig("trials", static_cast<int64_t>(trials));

  struct Size {
    int offers;
    int child_reps;
    int scan_reps;
  };
  std::vector<Size> sizes = small
      ? std::vector<Size>{{32, 20, 4}, {256, 4, 2}, {2048, 1, 1}}
      : std::vector<Size>{{32, 600, 200}, {256, 100, 40}, {2048, 10, 6}};

  std::printf("%-8s %-16s %14s %14s %8s\n", "offers", "path", "ref evals/s",
              "kernel evals/s", "speedup");
  for (const Size& size : sizes) {
    SchedulingProblem problem = MakeProblem(size.offers);
    std::vector<Schedule> schedules =
        RandomSchedules(problem, small ? 8 : 64, 99);

    PathResult ref_child = BestOf(trials, [&] {
      return ChildEvaluateReference(problem, schedules, size.child_reps);
    });
    PathResult ker_child = BestOf(trials, [&] {
      return ChildEvaluateKernel(problem, schedules, size.child_reps);
    });
    double child_speedup = ker_child.per_sec() / ref_child.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "child-evaluate", ref_child.per_sec(), ker_child.per_sec(),
                child_speedup);
    report.AddResult("child_evaluate/ref/" + std::to_string(size.offers))
        .Wall(ref_child.wall_s)
        .Items(ref_child.evals);
    report.AddResult("child_evaluate/kernel/" + std::to_string(size.offers))
        .Wall(ker_child.wall_s)
        .Items(ker_child.evals)
        .Metric("speedup_vs_ref", child_speedup);

    PathResult ref_scan = BestOf(
        trials, [&] { return TryMoveScanReference(problem, size.scan_reps); });
    PathResult ker_scan = BestOf(
        trials, [&] { return TryMoveScanKernel(problem, size.scan_reps); });
    double scan_speedup = ker_scan.per_sec() / ref_scan.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "trymove-scan", ref_scan.per_sec(), ker_scan.per_sec(),
                scan_speedup);
    report.AddResult("trymove_scan/ref/" + std::to_string(size.offers))
        .Wall(ref_scan.wall_s)
        .Items(ref_scan.evals);
    report.AddResult("trymove_scan/kernel/" + std::to_string(size.offers))
        .Wall(ker_scan.wall_s)
        .Items(ker_scan.evals)
        .Metric("speedup_vs_ref", scan_speedup);
  }

  report.WriteFile();
  return 0;
}
