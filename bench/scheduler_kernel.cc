// Measures the scheduling kernel (CompiledProblem / ScheduleWorkspace)
// against the preserved pre-kernel evaluator (ReferenceCostEvaluator) on the
// two hot paths that bound anytime-scheduler quality:
//
//   child-evaluate: full evaluation of a fresh schedule — the EA's per-child
//     cost. Old path: construct a scratch evaluator (two vector allocations
//     plus a thrown-away default-schedule accumulation) and re-set the
//     schedule. Kernel path: EvaluateInto() on a pooled workspace.
//   trymove-scan: the greedy's candidate scan — every (start, fill) of an
//     offer evaluated against the incumbent. Old path: AoS TryMove
//     recomputing slice energies per candidate. Kernel path:
//     TryMoveWithEnergies() with per-(offer, fill) energy vectors computed
//     once and slid across starts.
//
// Emits BENCH_scheduler_kernel.json with evaluations/sec per path and size
// plus the kernel/reference speedups (acceptance: >= 3x child-evaluate,
// >= 1.5x trymove-scan in a Release build).
//
// The fast_math kernel adds two legs measured against the exact kernel:
//   fast/child_evaluate: delta-replay of EA-shaped children (~10% mutated
//     genes against a shared base) vs pooled EvaluateInto of the same
//     children (acceptance: >= 2x in a Release build).
//   fast/scan: the segmented branchless TryMoveWithEnergiesFast probe vs
//     TryMoveWithEnergies over the same candidate scan.
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "bench_main.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "scheduling/compiled_problem.h"
#include "scheduling/reference_evaluator.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

namespace {

SchedulingProblem MakeProblem(int offers) {
  ScenarioConfig cfg;
  cfg.num_offers = offers;
  cfg.seed = 23 + static_cast<uint64_t>(offers);
  cfg.imbalance_amplitude_kwh = 4.0 * offers;
  cfg.max_buy_kwh = 0.8 * offers;
  cfg.max_sell_kwh = 0.8 * offers;
  return MakeScenario(cfg);
}

std::vector<Schedule> RandomSchedules(const SchedulingProblem& p, int count,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Schedule> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Schedule s;
    s.assignments.reserve(p.offers.size());
    for (const auto& fo : p.offers) {
      s.assignments.push_back(
          {fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
           rng.NextDouble()});
    }
    out.push_back(std::move(s));
  }
  return out;
}

struct PathResult {
  double wall_s = 0.0;
  double evals = 0.0;
  double sink = 0.0;  // defeats dead-code elimination
  double per_sec() const { return evals / wall_s; }
};

PathResult ChildEvaluateReference(const SchedulingProblem& p,
                                  const std::vector<Schedule>& schedules,
                                  int reps) {
  ReferenceCostEvaluator evaluator(p);
  PathResult r;
  r.sink += *evaluator.EvaluateTotal(schedules[0]);  // warmup
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Schedule& s : schedules) {
      r.sink += *evaluator.EvaluateTotal(s);
      r.evals += 1.0;
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

PathResult ChildEvaluateKernel(const SchedulingProblem& p,
                               const std::vector<Schedule>& schedules,
                               int reps) {
  CompiledProblem cp(p);
  ScheduleWorkspace pool(cp);
  PathResult r;
  r.sink += *pool.EvaluateInto(cp, schedules[0]);  // warmup
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Schedule& s : schedules) {
      r.sink += *pool.EvaluateInto(cp, s);
      r.evals += 1.0;
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

/// EA-shaped children for the fast_math delta-replay leg: each child is the
/// base schedule with a handful of genes replaced — the converged-generation
/// workload delta replay is built for, where per-child work scales with the
/// touched slices, not the horizon. (The EA itself measures each diff and
/// falls back to a full pass when replay would touch more slices than the
/// full sweep, so unconverged generations cost the same as exact mode.)
std::vector<Schedule> MutatedChildren(const SchedulingProblem& p,
                                      const Schedule& base, int count,
                                      uint64_t seed) {
  Rng rng(seed);
  const size_t mutations = std::max<size_t>(2, p.offers.size() / 64);
  std::vector<Schedule> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Schedule child = base;
    for (size_t m = 0; m < mutations; ++m) {
      size_t g = rng.Index(p.offers.size());
      const auto& fo = p.offers[g];
      child.assignments[g] = {
          fo.earliest_start + rng.UniformInt(0, fo.TimeFlexibility()),
          rng.NextDouble()};
    }
    out.push_back(std::move(child));
  }
  return out;
}

PathResult ChildEvaluateFastDelta(const SchedulingProblem& p,
                                  const Schedule& base,
                                  const std::vector<Schedule>& children,
                                  int reps) {
  CompiledProblem cp(p);
  ScheduleWorkspace ws(cp);
  if (!ws.SetSchedule(cp, base).ok()) std::abort();
  const double base_cost = ws.CachedCostTotal(cp);
  ScheduleWorkspace::DeltaTrail trail;
  trail.Reserve(cp);
  PathResult r;
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (const Schedule& s : children) {
      double cost = base_cost;
      for (size_t g = 0; g < cp.num_offers; ++g) {
        const OfferAssignment& a = s.assignments[g];
        if (a.start != ws.start(g) || a.fill != ws.fill(g)) {
          cost += ws.ApplyMoveDelta(cp, g, a.start, a.fill, &trail);
        }
      }
      ws.RollbackDelta(&trail);
      r.sink += cost;
      r.evals += 1.0;
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

/// One full greedy-style candidate scan over all offers: every start
/// candidate (capped like GreedyScheduler) x every fill in {0, 0.5, 1}.
constexpr int kMaxStartCandidates = 64;
constexpr double kFills[] = {0.0, 0.5, 1.0};

PathResult TryMoveScanReference(const SchedulingProblem& p, int reps) {
  ReferenceCostEvaluator evaluator(p);
  PathResult r;
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < p.offers.size(); ++i) {
      const auto& fo = p.offers[i];
      int64_t window = fo.TimeFlexibility();
      int64_t step_count = std::min<int64_t>(window, kMaxStartCandidates - 1);
      for (int64_t c = 0; c <= step_count; ++c) {
        flexoffer::TimeSlice start =
            fo.earliest_start +
            (step_count == 0 ? 0 : window * c / step_count);
        for (double fill : kFills) {
          r.sink += *evaluator.TryMove(i, {start, fill});
          r.evals += 1.0;
        }
      }
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

PathResult TryMoveScanKernel(const SchedulingProblem& p, int reps,
                             bool fast = false) {
  CompiledProblem cp(p);
  ScheduleWorkspace ws(cp);
  const size_t dur_cap = static_cast<size_t>(cp.max_duration);
  const size_t num_fills = std::size(kFills);
  std::vector<double> e_cur(dur_cap);
  std::vector<double> e_fill(num_fills * dur_cap);
  PathResult r;
  Stopwatch watch;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i < cp.num_offers; ++i) {
      const size_t dur = static_cast<size_t>(cp.duration[i]);
      ws.ComputeEnergies(cp, i, ws.fill(i), e_cur);
      for (size_t f = 0; f < num_fills; ++f) {
        ws.ComputeEnergies(cp, i, kFills[f],
                           {e_fill.data() + f * dur_cap, dur_cap});
      }
      int64_t window = cp.latest_start[i] - cp.earliest_start[i];
      int64_t step_count = std::min<int64_t>(window, kMaxStartCandidates - 1);
      for (int64_t c = 0; c <= step_count; ++c) {
        flexoffer::TimeSlice start =
            cp.earliest_start[i] +
            (step_count == 0 ? 0 : window * c / step_count);
        for (size_t f = 0; f < num_fills; ++f) {
          std::span<const double> cur{e_cur.data(), dur};
          std::span<const double> cand{e_fill.data() + f * dur_cap, dur};
          r.sink += fast ? ws.TryMoveWithEnergiesFast(cp, i, start, cur, cand)
                         : ws.TryMoveWithEnergies(cp, i, start, cur, cand);
          r.evals += 1.0;
        }
      }
    }
  }
  r.wall_s = watch.ElapsedSeconds();
  return r;
}

}  // namespace

/// Runs `measure` `trials` times and keeps the best-throughput run (the
/// usual throughput methodology: the minimum-interference trial is the one
/// closest to the code's actual speed on a noisy box).
template <typename Fn>
PathResult BestOf(int trials, Fn measure) {
  PathResult best = measure();
  for (int t = 1; t < trials; ++t) {
    PathResult r = measure();
    if (r.per_sec() > best.per_sec()) best = r;
  }
  return best;
}

int main() {
  const bool small = mirabel::bench::SmallMode();
  const int trials = small ? 1 : 3;

  bench::BenchReport report("scheduler_kernel");
  report.AddConfig("small_mode", small);
  report.AddConfig("trials", static_cast<int64_t>(trials));
  report.AddConfig("fast_avx2", FastKernelUsesAvx2());

  struct Size {
    int offers;
    int child_reps;
    int scan_reps;
  };
  std::vector<Size> sizes = small
      ? std::vector<Size>{{32, 20, 4}, {256, 4, 2}, {2048, 1, 1}}
      : std::vector<Size>{{32, 600, 200}, {256, 100, 40}, {2048, 10, 6}};

  std::printf("%-8s %-16s %14s %14s %8s\n", "offers", "path", "ref evals/s",
              "kernel evals/s", "speedup");
  for (const Size& size : sizes) {
    SchedulingProblem problem = MakeProblem(size.offers);
    std::vector<Schedule> schedules =
        RandomSchedules(problem, small ? 8 : 64, 99);

    PathResult ref_child = BestOf(trials, [&] {
      return ChildEvaluateReference(problem, schedules, size.child_reps);
    });
    PathResult ker_child = BestOf(trials, [&] {
      return ChildEvaluateKernel(problem, schedules, size.child_reps);
    });
    double child_speedup = ker_child.per_sec() / ref_child.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "child-evaluate", ref_child.per_sec(), ker_child.per_sec(),
                child_speedup);
    report.AddResult("child_evaluate/ref/" + std::to_string(size.offers))
        .Wall(ref_child.wall_s)
        .Items(ref_child.evals);
    report.AddResult("child_evaluate/kernel/" + std::to_string(size.offers))
        .Wall(ker_child.wall_s)
        .Items(ker_child.evals)
        .Metric("speedup_vs_ref", child_speedup);

    PathResult ref_scan = BestOf(
        trials, [&] { return TryMoveScanReference(problem, size.scan_reps); });
    PathResult ker_scan = BestOf(
        trials, [&] { return TryMoveScanKernel(problem, size.scan_reps); });
    double scan_speedup = ker_scan.per_sec() / ref_scan.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "trymove-scan", ref_scan.per_sec(), ker_scan.per_sec(),
                scan_speedup);
    report.AddResult("trymove_scan/ref/" + std::to_string(size.offers))
        .Wall(ref_scan.wall_s)
        .Items(ref_scan.evals);
    report.AddResult("trymove_scan/kernel/" + std::to_string(size.offers))
        .Wall(ker_scan.wall_s)
        .Items(ker_scan.evals)
        .Metric("speedup_vs_ref", scan_speedup);

    // fast_math legs, measured against the *exact kernel* (not the
    // reference): delta-replay of EA-shaped children vs pooled
    // EvaluateInto of the same children, and the segmented branchless
    // probe scan vs TryMoveWithEnergies.
    std::vector<Schedule> children =
        MutatedChildren(problem, schedules[0], small ? 8 : 64, 131);
    PathResult exact_child = BestOf(trials, [&] {
      return ChildEvaluateKernel(problem, children, size.child_reps);
    });
    PathResult fast_child = BestOf(trials, [&] {
      return ChildEvaluateFastDelta(problem, schedules[0], children,
                                    size.child_reps);
    });
    double fast_child_speedup = fast_child.per_sec() / exact_child.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "fast-child", exact_child.per_sec(), fast_child.per_sec(),
                fast_child_speedup);
    report.AddResult("fast/child_evaluate/" + std::to_string(size.offers))
        .Wall(fast_child.wall_s)
        .Items(fast_child.evals)
        .Metric("speedup_vs_kernel", fast_child_speedup);

    PathResult fast_scan = BestOf(trials, [&] {
      return TryMoveScanKernel(problem, size.scan_reps, /*fast=*/true);
    });
    double fast_scan_speedup = fast_scan.per_sec() / ker_scan.per_sec();
    std::printf("%-8d %-16s %14.0f %14.0f %7.2fx\n", size.offers,
                "fast-scan", ker_scan.per_sec(), fast_scan.per_sec(),
                fast_scan_speedup);
    report.AddResult("fast/scan/" + std::to_string(size.offers))
        .Wall(fast_scan.wall_s)
        .Items(fast_scan.evals)
        .Metric("speedup_vs_kernel", fast_scan_speedup);
  }

  report.WriteFile();
  return 0;
}
