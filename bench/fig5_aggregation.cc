// Regenerates the paper's Figure 5 (a)-(d): the aggregation experiment.
//
// Workload: artificially generated flex-offers (inserts only, bin-packer
// disabled), swept over the flex-offer count, under the four aggregation
// parameter combinations:
//   P0  Start-After-Time and Time-Flexibility equal,
//   P1  small Time-Flexibility variation allowed,
//   P2  small Start-After-Time variation allowed,
//   P3  small variation of both.
//
// Reported per (combination, count):
//   (a) aggregated flex-offer count        -> compression performance
//   (b) aggregation time, seconds
//   (c) loss of time flexibility per offer, slices
//   (d) disaggregation time vs aggregation time (+ least-squares line fit)
//
// Default sweep reaches the paper's ~800k offers; set MIRABEL_BENCH_SMALL=1
// to cap at 200k for quick runs.
#include <cstdlib>
#include <iostream>
#include <span>

#include "aggregation/pipeline.h"
#include "bench_main.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

struct ComboResult {
  std::string combo;
  int64_t offers = 0;
  size_t aggregates = 0;
  double aggregation_s = 0.0;
  double tf_loss_per_offer = 0.0;
  double disaggregation_s = 0.0;
};

ComboResult RunCombo(const std::string& name,
                     const aggregation::AggregationParams& params,
                     const std::vector<flexoffer::FlexOffer>& offers) {
  aggregation::PipelineConfig config;
  config.params = params;
  config.bin_packer = std::nullopt;  // disabled, as in the paper
  aggregation::AggregationPipeline pipeline(config);

  Stopwatch agg_watch;
  Status st = pipeline.Insert(std::span<const flexoffer::FlexOffer>(offers));
  if (!st.ok()) {
    std::cerr << "insert failed: " << st << "\n";
    std::exit(1);
  }
  pipeline.Flush();
  double agg_time = agg_watch.ElapsedSeconds();

  aggregation::AggregationStats stats = pipeline.Stats();

  // Disaggregation: schedule every aggregate somewhere inside its window at
  // a mid-band energy, then disaggregate all of them.
  Rng rng(1234);
  std::vector<flexoffer::ScheduledFlexOffer> macro_schedules;
  macro_schedules.reserve(pipeline.aggregates().size());
  for (const auto& [id, agg] : pipeline.aggregates()) {
    flexoffer::ScheduledFlexOffer s;
    s.offer_id = id;
    s.start = agg.macro.earliest_start +
              rng.UniformInt(0, agg.macro.TimeFlexibility());
    s.energies_kwh.reserve(agg.macro.profile.size());
    for (const auto& band : agg.macro.profile) {
      s.energies_kwh.push_back(band.min_kwh +
                               0.5 * (band.max_kwh - band.min_kwh));
    }
    macro_schedules.push_back(std::move(s));
  }
  Stopwatch disagg_watch;
  size_t micro = 0;
  for (const auto& s : macro_schedules) {
    auto r = pipeline.DisaggregateSchedule(s);
    if (!r.ok()) {
      std::cerr << "disaggregation failed: " << r.status() << "\n";
      std::exit(1);
    }
    micro += r->size();
  }
  double disagg_time = disagg_watch.ElapsedSeconds();
  if (micro != static_cast<size_t>(offers.size())) {
    std::cerr << "disaggregation lost offers: " << micro << " vs "
              << offers.size() << "\n";
    std::exit(1);
  }

  ComboResult r;
  r.combo = name;
  r.offers = static_cast<int64_t>(offers.size());
  r.aggregates = stats.aggregate_count;
  r.aggregation_s = agg_time;
  r.tf_loss_per_offer = stats.avg_time_flexibility_loss;
  r.disaggregation_s = disagg_time;
  return r;
}

}  // namespace

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  std::vector<int64_t> counts = small
                                    ? std::vector<int64_t>{50000, 100000, 200000}
                                    : std::vector<int64_t>{100000, 200000,
                                                           400000, 800000};

  // Attribute diversity tuned so that P0 (exact matching) compresses only
  // modestly (the paper's Fig. 5(a) has P0 just above ratio 4 at 800k
  // offers) while the tolerant combinations compress much further: offers
  // spread over a month, slice-granular start-after times, 0-16 h time
  // flexibility at slice granularity.
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = counts.back();
  workload.seed = 42;
  workload.horizon_days = 30;
  workload.time_flexibility_step = 1;
  workload.max_time_flexibility = 64;
  std::vector<flexoffer::FlexOffer> all =
      datagen::GenerateFlexOffers(workload);

  struct Combo {
    std::string name;
    aggregation::AggregationParams params;
  };
  std::vector<Combo> combos = {
      {"P0", aggregation::AggregationParams::P0()},
      {"P1", aggregation::AggregationParams::P1()},
      {"P2", aggregation::AggregationParams::P2()},
      {"P3", aggregation::AggregationParams::P3()},
  };

  CsvTable table({"combo", "flexoffer_count", "aggregate_count",
                  "compression_ratio", "aggregation_time_s",
                  "tf_loss_per_offer_slices", "disaggregation_time_s",
                  "disagg_over_agg"});
  std::vector<double> agg_times;
  std::vector<double> disagg_times;

  bench::BenchReport report("fig5_aggregation");
  report.AddConfig("max_offers", counts.back());
  report.AddConfig("horizon_days", static_cast<int64_t>(workload.horizon_days));

  for (const Combo& combo : combos) {
    for (int64_t count : counts) {
      std::vector<flexoffer::FlexOffer> offers(
          all.begin(), all.begin() + static_cast<ptrdiff_t>(count));
      ComboResult r = RunCombo(combo.name, combo.params, offers);
      report.AddResult(combo.name + "/" + std::to_string(count))
          .Wall(r.aggregation_s)
          .Items(static_cast<double>(r.offers))
          .Metric("aggregate_count", static_cast<double>(r.aggregates))
          .Metric("compression_ratio", static_cast<double>(r.offers) /
                                           static_cast<double>(r.aggregates))
          .Metric("tf_loss_per_offer_slices", r.tf_loss_per_offer)
          .Metric("disaggregation_s", r.disaggregation_s);
      table.BeginRow();
      table.AddCell(r.combo);
      table.AddInt(r.offers);
      table.AddInt(static_cast<int64_t>(r.aggregates));
      table.AddNumber(static_cast<double>(r.offers) /
                          static_cast<double>(r.aggregates),
                      2);
      table.AddNumber(r.aggregation_s, 3);
      table.AddNumber(r.tf_loss_per_offer, 3);
      table.AddNumber(r.disaggregation_s, 3);
      table.AddNumber(r.disaggregation_s / std::max(1e-9, r.aggregation_s), 3);
      agg_times.push_back(r.aggregation_s);
      disagg_times.push_back(r.disaggregation_s);
    }
  }

  std::cout << "=== Figure 5(a-c): compression, aggregation time, "
               "time-flexibility loss ===\n";
  table.WritePretty(std::cout);

  std::cout << "\n=== Figure 5(d): disaggregation vs aggregation time ===\n";
  Result<LinearFit> fit = FitLine(agg_times, disagg_times);
  if (fit.ok()) {
    std::printf("line fit: disagg = %.2f * agg + %.2f  (R^2 = %.3f)\n",
                fit->slope, fit->intercept, fit->r_squared);
    std::printf("paper reports y = 0.36*x - 0.68 (disaggregation ~3x faster "
                "than aggregation)\n");
    report.AddResult("disagg_vs_agg_fit")
        .Metric("slope", fit->slope)
        .Metric("intercept", fit->intercept)
        .Metric("r_squared", fit->r_squared);
  } else {
    std::cout << "line fit unavailable: " << fit.status() << "\n";
  }
  report.WriteFile();
  return 0;
}
