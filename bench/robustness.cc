// Degradation trajectories of the fault-tolerant hierarchy, emitting
// BENCH_robustness.json:
//
//  1. Loss sweep (results "drop/<rate>"): the full prosumer/BRP simulation
//     under uniform random message loss from 0% to 50%, acked retries on.
//     The interesting curve is how slowly schedules_received and the
//     imbalance reduction decay as the wire gets worse — retries flatten
//     the low-loss end, dead letters and deadline fallbacks take over past
//     the retry budget.
//
//  2. Blackout sweep (results "blackout/<slices>"): one BRP goes dark for a
//     window of {0, 16, 48, 96} slices mid-run. Its prosumers' offers ride
//     retries across short outages and degrade to deadline fallbacks across
//     long ones; the other BRPs are untouched.
//
//  3. Fire-and-forget contrast (result "noretry/0.20"): the 20% loss leg
//     with the reliable channel disabled — the baseline the tentpole is
//     measured against (compare with "drop/0.20").
//
// Every leg reports terminal_fraction: the share of offers created before
// the wind-down that reached a terminal lifecycle state (executed, rejected
// or expired-to-fallback). Conservation under chaos means this is 1.0 on
// every leg regardless of the fault plan — the schema check enforces it.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_main.h"
#include "common/stopwatch.h"
#include "node/simulation.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

node::SimulationConfig BaseConfig(bool small) {
  node::SimulationConfig cfg;
  cfg.num_brps = 3;
  cfg.prosumers_per_brp = small ? 6 : 20;
  cfg.days = small ? 1 : 3;
  cfg.offers_per_day = 8.0;
  cfg.seed = 97;
  // Iteration-capped anytime scheduling: every leg spends the same effort,
  // so the degradation curves isolate the transport, not scheduler jitter.
  cfg.scheduler_budget_s = 0.0;
  cfg.scheduler_max_iterations = small ? 200 : 1000;
  return cfg;
}

/// Share of offers created before the wind-down that reached a terminal
/// state. Offers created during the drain itself are excluded — their
/// deadlines legitimately outlive the run.
double TerminalFraction(const node::EdmsSimulation& sim,
                        flexoffer::TimeSlice run_end) {
  int64_t created = 0;
  int64_t terminal = 0;
  for (const auto& prosumer : sim.prosumers()) {
    for (int s = 0; s <= static_cast<int>(storage::FlexOfferState::kRejected);
         ++s) {
      storage::FlexOfferState state = static_cast<storage::FlexOfferState>(s);
      for (const auto& fact : prosumer->store().FlexOffersInState(state)) {
        if (fact.offer.creation_time >= run_end) continue;
        ++created;
        if (state == storage::FlexOfferState::kExecuted ||
            state == storage::FlexOfferState::kExpired ||
            state == storage::FlexOfferState::kRejected) {
          ++terminal;
        }
      }
    }
  }
  return created > 0
             ? static_cast<double>(terminal) / static_cast<double>(created)
             : 1.0;
}

void RunLeg(bench::BenchReport& report, const std::string& name,
            const node::SimulationConfig& cfg) {
  node::EdmsSimulation sim(cfg);
  Stopwatch watch;
  node::SimulationReport r = sim.Run();
  double wall_s = watch.ElapsedSeconds();
  const flexoffer::TimeSlice run_end =
      static_cast<flexoffer::TimeSlice>(cfg.days) * flexoffer::kSlicesPerDay;
  double terminal_fraction = TerminalFraction(sim, run_end);

  report.AddResult(name)
      .Wall(wall_s)
      .Items(static_cast<double>(r.offers_created))
      .Metric("imbalance_reduction", r.ImbalanceReduction())
      .Metric("terminal_fraction", terminal_fraction)
      .Metric("offers_created", static_cast<double>(r.offers_created))
      .Metric("offers_executed", static_cast<double>(r.offers_executed))
      .Metric("schedules_received", static_cast<double>(r.schedules_received))
      .Metric("fallbacks", static_cast<double>(r.fallbacks))
      .Metric("retries", static_cast<double>(r.transport_retries))
      .Metric("dead_letters", static_cast<double>(r.transport_dead_letters))
      .Metric("duplicates_dropped",
              static_cast<double>(r.transport_duplicates_dropped))
      .Metric("nacks_received", static_cast<double>(r.nacks_received))
      .Metric("offers_resubmitted",
              static_cast<double>(r.offers_resubmitted))
      .Metric("dropped_by_fault",
              static_cast<double>(r.messages_dropped_by_fault))
      .Metric("backlog_at_end",
              static_cast<double>(r.messages_undelivered_at_end));
  std::printf(
      "%-14s %.2fs  imbalance -%.1f%%  terminal %.4f  "
      "executed %lld/%lld  fallbacks %lld  retries %lld  dead %lld\n",
      name.c_str(), wall_s, 100.0 * r.ImbalanceReduction(), terminal_fraction,
      static_cast<long long>(r.offers_executed),
      static_cast<long long>(r.offers_created),
      static_cast<long long>(r.fallbacks),
      static_cast<long long>(r.transport_retries),
      static_cast<long long>(r.transport_dead_letters));
}

std::string RateName(const char* prefix, double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s/%.2f", prefix, rate);
  return buf;
}

}  // namespace

int main() {
  bool small = bench::SmallMode();
  node::SimulationConfig base = BaseConfig(small);

  bench::BenchReport report("robustness");
  report.AddConfig("num_brps", static_cast<int64_t>(base.num_brps));
  report.AddConfig("prosumers_per_brp",
                   static_cast<int64_t>(base.prosumers_per_brp));
  report.AddConfig("days", static_cast<int64_t>(base.days));
  report.AddConfig("offers_per_day", base.offers_per_day);
  report.AddConfig("scheduler_iterations",
                   static_cast<int64_t>(base.scheduler_max_iterations));
  report.AddConfig("retry_max_attempts",
                   static_cast<int64_t>(base.reliability.max_attempts));
  report.AddConfig("small_mode", small);

  // Leg 1: uniform random loss, acked retries on.
  for (double rate : {0.0, 0.05, 0.10, 0.20, 0.35, 0.50}) {
    node::SimulationConfig cfg = base;
    cfg.bus.drop_probability = rate;
    RunLeg(report, RateName("drop", rate), cfg);
  }

  // Leg 2: one BRP dark for a mid-run window, clean wire otherwise.
  for (int len : {0, 16, 48, 96}) {
    node::SimulationConfig cfg = base;
    if (len > 0) {
      flexoffer::TimeSlice from = flexoffer::kSlicesPerDay / 4;
      cfg.bus.faults.blackouts.push_back(
          {100, from, from + static_cast<flexoffer::TimeSlice>(len)});
    }
    RunLeg(report, "blackout/" + std::to_string(len), cfg);
  }

  // Leg 3: the 20% loss leg again without the reliable channel — the
  // fire-and-forget baseline the retry machinery is measured against.
  {
    node::SimulationConfig cfg = base;
    cfg.bus.drop_probability = 0.20;
    cfg.reliability.enabled = false;
    RunLeg(report, "noretry/0.20", cfg);
  }

  std::string path = report.WriteFile();
  if (path.empty()) {
    std::cerr << "failed to write bench report\n";
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
