// Shared JSON reporting for the bench binaries. Each bench builds a
// BenchReport, tags it with config, appends one result row per measured
// phase, and writes BENCH_<name>.json (machine-readable trajectory file)
// into the working directory — or $MIRABEL_BENCH_OUT_DIR when set.
#ifndef MIRABEL_BENCH_BENCH_MAIN_H_
#define MIRABEL_BENCH_BENCH_MAIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mirabel::bench {

// One measured benchmark case: a wall time, an optional throughput, and
// free-form extra numeric metrics.
struct BenchResult {
  std::string name;
  double wall_s = 0.0;
  // items / wall_s; < 0 means "not reported".
  double throughput_items_per_s = -1.0;
  std::vector<std::pair<std::string, double>> metrics;

  BenchResult& Wall(double seconds);
  // Records items processed and derives throughput from the current wall_s.
  BenchResult& Items(double items);
  BenchResult& Metric(const std::string& key, double value);
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  // Config key/values are echoed verbatim into the JSON "config" object.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, int64_t value);
  void AddConfig(const std::string& key, bool value);

  // Appends a result row; the returned reference stays valid until the next
  // AddResult call mutates the vector, so fill it immediately.
  BenchResult& AddResult(const std::string& name);

  const std::string& name() const { return name_; }
  std::string ToJson() const;

  // Writes BENCH_<name>.json; returns the path written, or "" on failure.
  std::string WriteFile() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> raw JSON
  std::vector<BenchResult> results_;
};

// True when the bench should shrink its workload (CTest smoke runs set
// MIRABEL_BENCH_SMALL=1).
bool SmallMode();

// JSON string escaping, exposed for the google-benchmark reporter shim.
std::string JsonEscape(const std::string& s);
// Formats a double as a JSON number (nan/inf become null).
std::string JsonNumber(double v);

}  // namespace mirabel::bench

#endif  // MIRABEL_BENCH_BENCH_MAIN_H_
