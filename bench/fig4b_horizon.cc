// Regenerates the paper's Figure 4(b): forecast accuracy (SMAPE) as a
// function of the forecast horizon (0-4 days), for an energy *demand* series
// and a wind *supply* series, both forecast with the HWT model.
//
// The paper used the UK NationalGrid demand data and the NREL wind
// integration dataset; we substitute the synthetic demand and wind
// generators (DESIGN.md). No external information (wind speed forecasts) is
// used, exactly as in the paper's experiment.
//
// Paper shape to check: error grows with the horizon for both series; the
// supply series is much harder (steeper degradation), since it carries fewer
// seasonal effects.
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <iostream>

#include "bench_main.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "datagen/energy_series_generator.h"
#include "forecasting/estimator.h"
#include "forecasting/hwt_model.h"

using namespace mirabel;               // NOLINT: bench brevity
using namespace mirabel::forecasting;  // NOLINT

namespace {

/// Trains HWT on all but the last 4 days and returns SMAPE per horizon.
std::vector<std::pair<double, double>> HorizonSweep(
    const std::vector<double>& values, double estimation_budget_s) {
  const int ppd = 48;
  const size_t holdout = 4 * ppd;
  TimeSeries full(values, ppd);
  auto split = full.Split(full.size() - holdout);
  const TimeSeries& train = split->first;
  const std::vector<double>& actual = split->second.values();

  HwtModel model({ppd, 7 * ppd});
  RandomRestartNelderMeadEstimator estimator;
  Objective objective = [&model, &train](const std::vector<double>& p) {
    Result<double> sse = model.FitWithParams(train, p);
    return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
  };
  EstimatorOptions options;
  options.time_budget_s = estimation_budget_s;
  options.seed = 30;
  EstimationResult est =
      estimator.Estimate(objective, model.Bounds(), options);
  auto sse = model.FitWithParams(train, est.best_params);
  if (!sse.ok()) {
    std::cerr << "fit failed: " << sse.status() << "\n";
    std::exit(1);
  }
  auto forecast = model.Forecast(static_cast<int>(holdout));
  if (!forecast.ok()) {
    std::cerr << "forecast failed: " << forecast.status() << "\n";
    std::exit(1);
  }

  // SMAPE over the window [0, h) for growing horizons h.
  std::vector<std::pair<double, double>> out;
  for (int h : {6, 12, 24, 48, 96, 144, 192}) {
    std::vector<double> a(actual.begin(), actual.begin() + h);
    std::vector<double> f(forecast->begin(), forecast->begin() + h);
    auto smape = Smape(a, f);
    if (smape.ok()) {
      out.emplace_back(static_cast<double>(h) / ppd, *smape);
    }
  }
  return out;
}

}  // namespace

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  const double budget = small ? 1.0 : 5.0;

  datagen::DemandSeriesConfig demand_cfg;
  demand_cfg.periods_per_day = 48;
  demand_cfg.days = 60;
  demand_cfg.seed = 7;
  std::vector<double> demand = datagen::GenerateDemandSeries(demand_cfg);

  datagen::WindSeriesConfig wind_cfg;
  wind_cfg.periods_per_day = 48;
  wind_cfg.days = 60;
  wind_cfg.seed = 11;
  std::vector<double> wind = datagen::GenerateWindSeries(wind_cfg);

  bench::BenchReport report("fig4b_horizon");
  report.AddConfig("estimation_budget_s", budget);
  report.AddConfig("days", static_cast<int64_t>(60));

  CsvTable table({"series", "horizon_days", "smape"});
  const std::pair<const char*, const std::vector<double>*> series_list[] = {
      {"demand", &demand}, {"wind_supply", &wind}};
  for (const auto& [series_name, values] : series_list) {
    Stopwatch sweep_watch;
    auto sweep = HorizonSweep(*values, budget);
    bench::BenchResult& row = report.AddResult(series_name);
    row.Wall(sweep_watch.ElapsedSeconds())
        .Items(static_cast<double>(sweep.size()));
    for (auto& [h, smape] : sweep) {
      table.BeginRow();
      table.AddCell(series_name);
      table.AddNumber(h, 3);
      table.AddNumber(smape, 5);
      char key[32];
      std::snprintf(key, sizeof(key), "smape_%gd", h);
      row.Metric(key, smape);
    }
  }

  std::cout << "=== Figure 4(b): accuracy vs forecast horizon ===\n";
  table.WritePretty(std::cout);
  std::printf("\npaper shape: error grows with horizon; wind supply degrades "
              "much faster than demand.\n");
  report.WriteFile();
  return 0;
}
