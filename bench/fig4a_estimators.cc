// Regenerates the paper's Figure 4(a): error development over estimation time
// of three global parameter-search algorithms — Random-Restart Nelder-Mead,
// Simulated Annealing and Random Search — fitting the HWT triple-seasonal
// exponential smoothing model.
//
// The paper used the UK NationalGrid half-hourly demand dataset; we use the
// synthetic triple-seasonal demand generator (see DESIGN.md substitutions).
// Accuracy is the SMAPE of a one-day-ahead forecast on a holdout day, sampled
// along each estimator's best-so-far trajectory.
//
// Paper shape to check: all three converge to similar accuracy; RRNM is
// slightly ahead over most of the time axis.
#include <cstdlib>
#include <limits>
#include <iostream>

#include "bench_main.h"
#include "common/csv.h"
#include "common/math_util.h"
#include "common/stopwatch.h"
#include "datagen/energy_series_generator.h"
#include "forecasting/estimator.h"
#include "forecasting/hwt_model.h"

using namespace mirabel;               // NOLINT: bench brevity
using namespace mirabel::forecasting;  // NOLINT

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  const double budget_s = small ? 3.0 : 12.0;

  // 8 weeks of half-hourly demand + 1 holdout day.
  datagen::DemandSeriesConfig cfg;
  cfg.periods_per_day = 48;
  cfg.days = 57;
  cfg.seed = 7;
  std::vector<double> values = datagen::GenerateDemandSeries(cfg);
  const size_t holdout = 48;
  TimeSeries full(values, 48);
  auto split = full.Split(full.size() - holdout);
  const TimeSeries& train = split->first;
  const std::vector<double>& actual = split->second.values();

  const std::vector<int> seasons = {48, 336};

  bench::BenchReport report("fig4a_estimators");
  report.AddConfig("time_budget_s", budget_s);
  report.AddConfig("train_periods", static_cast<int64_t>(train.size()));
  report.AddConfig("holdout_periods", static_cast<int64_t>(holdout));

  CsvTable table({"estimator", "time_s", "sse", "holdout_smape", "evals"});
  for (const std::string name :
       {"RandomRestartNelderMead", "SimulatedAnnealing", "RandomSearch"}) {
    auto estimator = MakeEstimator(name);
    HwtModel model(seasons);
    Objective objective = [&model, &train](const std::vector<double>& p) {
      Result<double> sse = model.FitWithParams(train, p);
      return sse.ok() ? *sse : std::numeric_limits<double>::infinity();
    };
    EstimatorOptions options;
    options.time_budget_s = budget_s;
    options.seed = 2012;
    Stopwatch est_watch;
    EstimationResult est =
        estimator->Estimate(objective, model.Bounds(), options);
    double est_wall_s = est_watch.ElapsedSeconds();

    // Evaluate the best-so-far trajectory on the holdout day.
    for (const TracePoint& tp : est.trace) {
      HwtModel snapshot(seasons);
      auto sse = snapshot.FitWithParams(train, tp.params);
      if (!sse.ok()) continue;
      auto forecast = snapshot.Forecast(static_cast<int>(holdout));
      if (!forecast.ok()) continue;
      auto smape = Smape(actual, *forecast);
      if (!smape.ok()) continue;
      table.BeginRow();
      table.AddCell(name);
      table.AddNumber(tp.time_s, 3);
      table.AddNumber(tp.best_value, 1);
      table.AddNumber(*smape, 5);
      table.AddInt(tp.evals);
    }
    std::printf("%-26s final SSE %.1f after %d evals\n", name.c_str(),
                est.best_value, est.evals);
    report.AddResult(name)
        .Wall(est_wall_s)
        .Items(static_cast<double>(est.evals))
        .Metric("final_sse", est.best_value);
  }

  std::cout << "\n=== Figure 4(a): accuracy (holdout SMAPE) vs estimation "
               "time ===\n";
  table.WritePretty(std::cout);
  std::printf("\npaper shape: all estimators converge to similar SMAPE; "
              "Random Restart Nelder Mead slightly ahead.\n");
  report.WriteFile();
  return 0;
}
