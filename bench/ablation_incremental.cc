// Ablation of incremental aggregation (paper §4): "aggregated flex-offers
// can be incrementally updated to avoid a from-scratch re-computation ...
// Thus, a more efficient flex-offer aggregation can be achieved."
//
// A base set of offers is aggregated once; then update batches (inserts +
// removals) arrive. The incremental pipeline applies each batch to its live
// state; the from-scratch baseline rebuilds a fresh pipeline over the full
// surviving set each time. Both must end with identical statistics.
#include <cstdlib>
#include <iostream>

#include "aggregation/pipeline.h"
#include "bench_main.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"

using namespace mirabel;  // NOLINT: bench brevity

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  const int64_t base_count = small ? 20000 : 100000;
  const int64_t batch_size = small ? 2000 : 10000;
  const int batches = 8;

  datagen::FlexOfferWorkloadConfig workload;
  workload.count = base_count + batches * batch_size;
  workload.seed = 31;
  workload.horizon_days = 7;
  std::vector<flexoffer::FlexOffer> offers =
      datagen::GenerateFlexOffers(workload);

  aggregation::PipelineConfig config;
  config.params = aggregation::AggregationParams::P3();

  // Incremental pipeline: base load, then per-batch updates.
  aggregation::AggregationPipeline incremental(config);
  for (int64_t i = 0; i < base_count; ++i) {
    if (!incremental.Insert(offers[static_cast<size_t>(i)]).ok()) return 1;
  }
  incremental.Flush();

  CsvTable table({"batch", "incremental_s", "from_scratch_s", "speedup",
                  "aggregates"});
  std::vector<flexoffer::FlexOffer> survivors(
      offers.begin(), offers.begin() + static_cast<ptrdiff_t>(base_count));

  double total_incremental = 0.0;
  double total_scratch = 0.0;
  for (int b = 0; b < batches; ++b) {
    int64_t begin = base_count + b * batch_size;
    // The batch: new inserts plus removal of an equal slice of old offers.
    std::vector<flexoffer::FlexOffer> inserts(
        offers.begin() + static_cast<ptrdiff_t>(begin),
        offers.begin() + static_cast<ptrdiff_t>(begin + batch_size));
    std::vector<flexoffer::FlexOfferId> removals;
    for (int64_t i = 0; i < batch_size / 2; ++i) {
      removals.push_back(survivors[static_cast<size_t>(b) * 1000 +
                                   static_cast<size_t>(i)]
                             .id);
    }

    Stopwatch inc_watch;
    for (const auto& fo : inserts) {
      if (!incremental.Insert(fo).ok()) return 1;
    }
    for (auto id : removals) {
      if (!incremental.Remove(id).ok()) return 1;
    }
    incremental.Flush();
    double inc_time = inc_watch.ElapsedSeconds();

    // Maintain the surviving set for the from-scratch baseline.
    std::unordered_set<flexoffer::FlexOfferId> removed(removals.begin(),
                                                       removals.end());
    std::vector<flexoffer::FlexOffer> next;
    next.reserve(survivors.size() + inserts.size());
    for (const auto& fo : survivors) {
      if (removed.count(fo.id) == 0) next.push_back(fo);
    }
    next.insert(next.end(), inserts.begin(), inserts.end());
    survivors = std::move(next);

    Stopwatch scratch_watch;
    aggregation::AggregationPipeline scratch(config);
    for (const auto& fo : survivors) {
      if (!scratch.Insert(fo).ok()) return 1;
    }
    scratch.Flush();
    double scratch_time = scratch_watch.ElapsedSeconds();

    // Sanity: both maintain the same offers and aggregate count.
    if (scratch.Stats().offer_count != incremental.Stats().offer_count ||
        scratch.Stats().aggregate_count !=
            incremental.Stats().aggregate_count) {
      std::cerr << "incremental/from-scratch state diverged!\n";
      return 1;
    }

    total_incremental += inc_time;
    total_scratch += scratch_time;
    table.BeginRow();
    table.AddInt(b);
    table.AddNumber(inc_time, 4);
    table.AddNumber(scratch_time, 4);
    table.AddNumber(scratch_time / std::max(1e-9, inc_time), 1);
    table.AddInt(static_cast<int64_t>(incremental.Stats().aggregate_count));
  }

  std::cout << "=== Ablation: incremental vs from-scratch aggregation "
               "(paper Sec. 4) ===\n";
  table.WritePretty(std::cout);
  std::printf("\ntotal: incremental %.3fs vs from-scratch %.3fs (%.1fx)\n",
              total_incremental, total_scratch,
              total_scratch / std::max(1e-9, total_incremental));

  bench::BenchReport report("ablation_incremental");
  report.AddConfig("base_count", base_count);
  report.AddConfig("batch_size", batch_size);
  report.AddConfig("batches", static_cast<int64_t>(batches));
  // Items per batch = inserts + removals actually applied.
  const double batch_updates = static_cast<double>(batch_size) * 1.5;
  report.AddResult("incremental")
      .Wall(total_incremental)
      .Items(batch_updates * batches);
  report.AddResult("from_scratch")
      .Wall(total_scratch)
      .Items(batch_updates * batches)
      .Metric("speedup_vs_incremental",
              total_scratch / std::max(1e-9, total_incremental));
  report.WriteFile();
  return 0;
}
