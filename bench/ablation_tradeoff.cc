// Ablation of the aggregation <-> scheduling interplay (paper §8): "how do
// we choose the best aggregation result size ... to preserve as much as
// possible of the flexibility, while still keeping the overall run time
// within the limits?"
//
// A fixed workload of flex-offers is pushed through each aggregation setting
// (no aggregation at all, P0..P3, P3 + bin-packer), then the resulting macro
// offers are scheduled under a fixed greedy budget. Reported per setting:
// aggregate count, aggregation time, flexibility loss, scheduling time to
// convergence, and final schedule cost — the two-dimensional trade-off the
// paper describes.
#include <cstdlib>
#include <iostream>
#include <optional>

#include "aggregation/pipeline.h"
#include "bench_main.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"
#include "scheduling/scheduler.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

struct Setting {
  std::string name;
  bool aggregate = true;
  aggregation::PipelineConfig config;
};

}  // namespace

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  const int64_t offer_count = small ? 3000 : 20000;
  const double schedule_budget_s = small ? 0.5 : 2.0;

  datagen::FlexOfferWorkloadConfig workload;
  workload.count = offer_count;
  workload.seed = 77;
  workload.horizon_days = 1;
  std::vector<flexoffer::FlexOffer> offers =
      datagen::GenerateFlexOffers(workload);

  std::vector<Setting> settings;
  settings.push_back({"none (micro offers)", false, {}});
  settings.push_back({"P0", true, {aggregation::AggregationParams::P0(), std::nullopt}});
  settings.push_back({"P1", true, {aggregation::AggregationParams::P1(), std::nullopt}});
  settings.push_back({"P2", true, {aggregation::AggregationParams::P2(), std::nullopt}});
  settings.push_back({"P3", true, {aggregation::AggregationParams::P3(), std::nullopt}});
  {
    aggregation::PipelineConfig with_packer;
    with_packer.params = aggregation::AggregationParams::P3();
    aggregation::BinPackerBounds bounds;
    bounds.max_offers = 64;
    with_packer.bin_packer = bounds;
    settings.push_back({"P3+binpack(64)", true, with_packer});
  }

  bench::BenchReport report("ablation_tradeoff");
  report.AddConfig("offer_count", offer_count);
  report.AddConfig("schedule_budget_s", schedule_budget_s);

  CsvTable table({"setting", "macro_count", "agg_time_s", "tf_loss_per_offer",
                  "schedule_cost_eur", "sched_time_to_best_s"});

  for (Setting& setting : settings) {
    Stopwatch agg_watch;
    std::vector<flexoffer::FlexOffer> macros;
    double tf_loss = 0.0;
    std::optional<aggregation::AggregationPipeline> pipeline;
    if (setting.aggregate) {
      pipeline.emplace(setting.config);
      for (const auto& fo : offers) {
        if (!pipeline->Insert(fo).ok()) return 1;
      }
      pipeline->Flush();
      for (const auto& [id, agg] : pipeline->aggregates()) {
        macros.push_back(agg.macro);
      }
      tf_loss = pipeline->Stats().avg_time_flexibility_loss;
    } else {
      macros = offers;
    }
    double agg_time = setting.aggregate ? agg_watch.ElapsedSeconds() : 0.0;

    // One shared scheduling scenario sized to the workload.
    scheduling::SchedulingProblem problem;
    problem.horizon_start = 0;
    problem.horizon_length = 96 * 5 / 2;
    size_t h = static_cast<size_t>(problem.horizon_length);
    problem.baseline_imbalance_kwh.assign(h, 0.0);
    for (size_t s = 0; s < h; ++s) {
      double frac = static_cast<double>(s % 96) / 96.0;
      problem.baseline_imbalance_kwh[s] =
          offer_count * 0.02 *
          (frac > 0.7 && frac < 0.9 ? 1.5 : (frac > 0.4 && frac < 0.6 ? -1.2 : 0.3));
    }
    problem.imbalance_penalty_eur.assign(h, 0.3);
    problem.market.buy_price_eur.assign(h, 0.15);
    problem.market.sell_price_eur.assign(h, 0.05);
    problem.market.max_buy_kwh = offer_count * 0.005;
    problem.market.max_sell_kwh = offer_count * 0.005;
    problem.offers = macros;

    scheduling::GreedyScheduler scheduler;
    scheduling::SchedulerOptions options;
    options.time_budget_s = schedule_budget_s;
    options.seed = 3;
    auto run = scheduler.Run(problem, options);
    if (!run.ok()) {
      std::cerr << "scheduling failed: " << run.status() << "\n";
      return 1;
    }

    table.BeginRow();
    table.AddCell(setting.name);
    table.AddInt(static_cast<int64_t>(macros.size()));
    table.AddNumber(agg_time, 3);
    table.AddNumber(tf_loss, 3);
    table.AddNumber(run->cost.total(), 1);
    table.AddNumber(run->trace.back().time_s, 3);

    report.AddResult(setting.name)
        .Wall(agg_time + schedule_budget_s)
        .Items(static_cast<double>(offer_count))
        .Metric("macro_count", static_cast<double>(macros.size()))
        .Metric("aggregation_s", agg_time)
        .Metric("tf_loss_per_offer", tf_loss)
        .Metric("schedule_cost_eur", run->cost.total())
        .Metric("sched_time_to_best_s", run->trace.back().time_s);
  }

  std::cout << "=== Ablation: aggregation aggressiveness vs scheduling "
               "(paper Sec. 8 trade-off) ===\n";
  table.WritePretty(std::cout);
  std::printf(
      "\nreading: stronger aggregation -> fewer macros and faster scheduling "
      "convergence, bought with time-flexibility loss; no aggregation leaves "
      "the scheduler too many objects for the budget.\n");
  report.WriteFile();
  return 0;
}
