#include "bench_main.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mirabel::bench {

BenchResult& BenchResult::Wall(double seconds) {
  wall_s = seconds;
  return *this;
}

BenchResult& BenchResult::Items(double items) {
  if (wall_s > 0.0 && items > 0.0) {
    throughput_items_per_s = items / wall_s;
  }
  metrics.emplace_back("items", items);
  return *this;
}

BenchResult& BenchResult::Metric(const std::string& key, double value) {
  metrics.emplace_back(key, value);
  return *this;
}

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchReport::AddConfig(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void BenchReport::AddConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void BenchReport::AddConfig(const std::string& key, int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void BenchReport::AddConfig(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

BenchResult& BenchReport::AddResult(const std::string& name) {
  results_.emplace_back();
  results_.back().name = name;
  return results_.back();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string BenchReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"bench\": \"" << JsonEscape(name_) << "\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"small_mode\": " << (SmallMode() ? "true" : "false") << ",\n";
  os << "  \"config\": {";
  for (size_t i = 0; i < config_.size(); ++i) {
    os << (i ? ", " : "") << "\"" << JsonEscape(config_[i].first)
       << "\": " << config_[i].second;
  }
  os << "},\n";
  double total_wall = 0.0;
  os << "  \"results\": [\n";
  for (size_t i = 0; i < results_.size(); ++i) {
    const BenchResult& r = results_[i];
    total_wall += r.wall_s;
    os << "    {\"name\": \"" << JsonEscape(r.name) << "\", \"wall_s\": "
       << JsonNumber(r.wall_s);
    if (r.throughput_items_per_s >= 0.0) {
      os << ", \"throughput_items_per_s\": "
         << JsonNumber(r.throughput_items_per_s);
    }
    for (const auto& [key, value] : r.metrics) {
      os << ", \"" << JsonEscape(key) << "\": " << JsonNumber(value);
    }
    os << "}" << (i + 1 < results_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"total_wall_s\": " << JsonNumber(total_wall) << "\n";
  os << "}\n";
  return os.str();
}

std::string BenchReport::WriteFile() const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("MIRABEL_BENCH_OUT_DIR")) {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return "";
  }
  out << ToJson();
  out.close();
  std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
  return path;
}

bool SmallMode() { return std::getenv("MIRABEL_BENCH_SMALL") != nullptr; }

}  // namespace mirabel::bench
