// Reproduces the paper's §6 optimality study in miniature: "in a preliminary
// experiment with 10 flex-offers without energy constraints it took almost
// three hours to explore all (almost 850 million) sensible solutions".
//
// We shrink the instance (time-flexibility windows) so the full enumeration
// finishes in seconds, find the true optimum, and report the optimality-gap
// trajectory of every scheduler family against it: the §6 metaheuristics
// (greedy, EA, hybrid), the branch-and-bound search that proves the same
// optimum while visiting a fraction of the combinations, and the portfolio
// race that hedges across all of them.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <string>

#include "bench_main.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "edms/scheduler_registry.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

namespace {

double GapPct(double cost, double opt_cost) {
  const double denom = std::max(std::fabs(opt_cost), 1e-9);
  return (cost - opt_cost) / denom * 100.0;
}

}  // namespace

int main() {
  // 10 offers, no energy flexibility (fixed profiles). The scenario
  // generator randomizes each offer's window up to the cap, so the actual
  // combination count is far below the worst case — small enough for the
  // exhaustive sweep to finish in seconds and anchor the gap at a proven
  // optimum. Small mode shrinks the windows further for smoke runs.
  bool small = bench::SmallMode();
  ScenarioConfig cfg;
  cfg.num_offers = 10;
  cfg.no_energy_flexibility = true;
  cfg.max_time_flexibility = small ? 2 : 8;
  cfg.seed = 4242;
  cfg.imbalance_amplitude_kwh = 40.0;
  SchedulingProblem problem = MakeScenario(cfg);

  uint64_t combos = ExhaustiveScheduler::CountCombinations(problem);
  std::printf("instance: %zu flex-offers, %llu start-time combinations\n",
              problem.offers.size(),
              static_cast<unsigned long long>(combos));

  bench::BenchReport report("optimality_study");
  report.AddConfig("num_offers", static_cast<int64_t>(cfg.num_offers));
  report.AddConfig("max_time_flexibility",
                   static_cast<int64_t>(cfg.max_time_flexibility));
  report.AddConfig("combinations", static_cast<int64_t>(combos));

  Stopwatch ex_watch;
  ExhaustiveScheduler exhaustive;
  SchedulerOptions ex_options;
  ex_options.time_budget_s = 600.0;
  auto optimal = exhaustive.Run(problem, ex_options);
  if (!optimal.ok()) {
    std::cerr << "exhaustive failed: " << optimal.status() << "\n";
    return 1;
  }
  if (!optimal->optimal_proven) {
    std::cerr << "exhaustive enumeration did not complete within its budget; "
                 "gaps below are vs best-known, not proven optimum\n";
  }
  const double opt_cost = optimal->cost.total();
  const double ex_wall = ex_watch.ElapsedSeconds();

  CsvTable table({"algorithm", "time_s", "cost_eur", "gap_vs_optimal_eur",
                  "gap_vs_optimal_pct"});
  table.BeginRow();
  table.AddCell("Exhaustive(optimal)");
  table.AddNumber(ex_wall, 2);
  table.AddNumber(opt_cost, 2);
  table.AddNumber(0.0, 2);
  table.AddNumber(0.0, 3);
  report.AddResult("Exhaustive(optimal)")
      .Wall(ex_wall)
      .Items(static_cast<double>(combos))
      .Metric("cost_eur", opt_cost)
      .Metric("gap_vs_optimal_eur", 0.0)
      .Metric("gap_vs_optimal_pct", 0.0)
      .Metric("optimal_proven", optimal->optimal_proven ? 1.0 : 0.0);

  // Gap trajectory: every scheduler's cost-over-time trace, re-based as a
  // percent gap against the proven optimum (the §6 convergence picture with
  // an exact zero line).
  CsvTable trajectory({"algorithm", "time_s", "gap_vs_optimal_pct"});

  for (const std::string algo : {"GreedySearch", "EvolutionaryAlgorithm",
                                 "Hybrid", "BranchAndBound", "Portfolio"}) {
    Stopwatch watch;
    auto scheduler =
        std::move(edms::SchedulerRegistry::Default().Create(algo)).value();
    SchedulerOptions options;
    options.time_budget_s = small ? 0.3 : 1.0;
    options.seed = 5;
    auto result = scheduler->Run(problem, options);
    if (!result.ok()) {
      std::cerr << algo << " failed: " << result.status() << "\n";
      return 1;
    }
    const double wall = watch.ElapsedSeconds();
    const double cost = result->cost.total();
    table.BeginRow();
    table.AddCell(algo);
    table.AddNumber(wall, 2);
    table.AddNumber(cost, 2);
    table.AddNumber(cost - opt_cost, 2);
    table.AddNumber(GapPct(cost, opt_cost), 3);
    auto& leg = report.AddResult(algo)
                    .Wall(wall)
                    .Metric("cost_eur", cost)
                    .Metric("gap_vs_optimal_eur", cost - opt_cost)
                    .Metric("gap_vs_optimal_pct", GapPct(cost, opt_cost));
    if (algo == "BranchAndBound") {
      // The tentpole numbers: proof with a fraction of the enumeration.
      leg.Metric("nodes_visited", static_cast<double>(result->nodes_visited))
          .Metric("optimal_proven", result->optimal_proven ? 1.0 : 0.0)
          .Metric("nodes_vs_combinations_pct",
                  combos > 0 ? 100.0 * static_cast<double>(
                                           result->nodes_visited) /
                                   static_cast<double>(combos)
                             : 0.0);
    }
    if (algo == "Portfolio") {
      // Regret vs its own best member must be zero by construction; anything
      // else means the race dropped a better schedule on the floor.
      double best_member = std::numeric_limits<double>::infinity();
      for (const PortfolioMemberStats& member : result->portfolio) {
        if (member.ok) best_member = std::min(best_member, member.cost_eur);
        std::printf("portfolio member %-22s cost %.2f EUR %s%s\n",
                    member.name.c_str(), member.cost_eur,
                    member.won ? "[winner]" : "",
                    member.optimal_proven ? " [proven optimal]" : "");
      }
      leg.Metric("portfolio_regret_eur", cost - best_member)
          .Metric("optimal_proven", result->optimal_proven ? 1.0 : 0.0);
    }
    for (const CostTracePoint& point : result->trace) {
      trajectory.BeginRow();
      trajectory.AddCell(algo);
      trajectory.AddNumber(point.time_s, 4);
      trajectory.AddNumber(GapPct(point.best_cost_eur, opt_cost), 3);
    }
  }

  std::cout << "\n=== Optimality study (shrunk instance of paper Sec. 6) "
               "===\n";
  table.WritePretty(std::cout);
  std::cout << "\n=== Gap trajectory (best-so-far vs proven optimum) ===\n";
  trajectory.WritePretty(std::cout);
  std::printf("\npaper point: exhaustive enumeration explodes (850M combos "
              "~ 3h for 10 offers); branch-and-bound proves the same "
              "optimum in a fraction of the nodes, and the metaheuristics "
              "approach it in seconds.\n");
  report.WriteFile();
  return 0;
}
