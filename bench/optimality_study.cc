// Reproduces the paper's §6 optimality study in miniature: "in a preliminary
// experiment with 10 flex-offers without energy constraints it took almost
// three hours to explore all (almost 850 million) sensible solutions".
//
// We shrink the instance (time-flexibility windows) so the full enumeration
// finishes in seconds, find the true optimum, and report how close the two
// metaheuristics get — the point of the study: exhaustive search is hopeless
// at scale, the metaheuristics land near the optimum in a fraction of the
// time.
#include <cstdio>
#include <iostream>

#include "bench_main.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "edms/scheduler_registry.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

int main() {
  // 10 offers, no energy flexibility (fixed profiles), windows <= 6 slices:
  // ~7^10 would still be 282M, so cap flexibility at 4 -> <= 5^10 ~ 9.7M.
  // Small mode shrinks the windows further (<= 3^10 ~ 59k) for smoke runs.
  bool small = bench::SmallMode();
  ScenarioConfig cfg;
  cfg.num_offers = 10;
  cfg.no_energy_flexibility = true;
  cfg.max_time_flexibility = small ? 2 : 4;
  cfg.seed = 4242;
  cfg.imbalance_amplitude_kwh = 40.0;
  SchedulingProblem problem = MakeScenario(cfg);

  uint64_t combos = ExhaustiveScheduler::CountCombinations(problem);
  std::printf("instance: %zu flex-offers, %llu start-time combinations\n",
              problem.offers.size(),
              static_cast<unsigned long long>(combos));

  CsvTable table({"algorithm", "time_s", "cost_eur", "gap_vs_optimal_eur"});

  Stopwatch ex_watch;
  ExhaustiveScheduler exhaustive;
  SchedulerOptions ex_options;
  ex_options.time_budget_s = 600.0;
  auto optimal = exhaustive.Run(problem, ex_options);
  if (!optimal.ok()) {
    std::cerr << "exhaustive failed: " << optimal.status() << "\n";
    return 1;
  }
  double opt_cost = optimal->cost.total();
  table.BeginRow();
  table.AddCell("Exhaustive(optimal)");
  table.AddNumber(ex_watch.ElapsedSeconds(), 2);
  table.AddNumber(opt_cost, 2);
  table.AddNumber(0.0, 2);

  bench::BenchReport report("optimality_study");
  report.AddConfig("num_offers", static_cast<int64_t>(cfg.num_offers));
  report.AddConfig("max_time_flexibility",
                   static_cast<int64_t>(cfg.max_time_flexibility));
  report.AddConfig("combinations", static_cast<int64_t>(combos));
  report.AddResult("Exhaustive(optimal)")
      .Wall(ex_watch.ElapsedSeconds())
      .Items(static_cast<double>(combos))
      .Metric("cost_eur", opt_cost)
      .Metric("gap_vs_optimal_eur", 0.0);

  for (const std::string algo : {"GreedySearch", "EvolutionaryAlgorithm"}) {
    Stopwatch watch;
    auto scheduler =
        std::move(edms::SchedulerRegistry::Default().Create(algo)).value();
    SchedulerOptions options;
    options.time_budget_s = 1.0;
    options.seed = 5;
    auto result = scheduler->Run(problem, options);
    if (!result.ok()) {
      std::cerr << algo << " failed: " << result.status() << "\n";
      return 1;
    }
    table.BeginRow();
    table.AddCell(algo);
    table.AddNumber(watch.ElapsedSeconds(), 2);
    table.AddNumber(result->cost.total(), 2);
    table.AddNumber(result->cost.total() - opt_cost, 2);
    report.AddResult(algo)
        .Wall(watch.ElapsedSeconds())
        .Metric("cost_eur", result->cost.total())
        .Metric("gap_vs_optimal_eur", result->cost.total() - opt_cost);
  }

  std::cout << "\n=== Optimality study (shrunk instance of paper Sec. 6) "
               "===\n";
  table.WritePretty(std::cout);
  std::printf("\npaper point: exhaustive enumeration explodes (850M combos "
              "~ 3h for 10 offers); metaheuristics approach the optimum in "
              "seconds.\n");
  report.WriteFile();
  return 0;
}
