// Regenerates the paper's Figure 6 (a)-(d): cost-over-time convergence of the
// evolutionary algorithm (EA) and randomized greedy search (GS) on intra-day
// scheduling scenarios with 10, 100, 1000 and 10000 aggregated flex-offers.
// The paper runs each algorithm five times and averages; we default to three
// runs (MIRABEL_BENCH_SMALL=1 -> one run, smaller budgets).
//
// Paper shape to check: both algorithms drive cost down over time; larger
// instances converge much more slowly; 1000 offers is still efficiently
// solvable, 10000 calls for stronger aggregation upstream.
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "bench_main.h"
#include "common/csv.h"
#include "edms/scheduler_registry.h"
#include "scheduling/scenario.h"
#include "scheduling/scheduler.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

namespace {

/// Best cost at time `t` from a best-so-far trace (step function).
double CostAt(const std::vector<CostTracePoint>& trace, double t) {
  double cost = trace.front().best_cost_eur;
  for (const auto& p : trace) {
    if (p.time_s <= t) cost = p.best_cost_eur;
  }
  return cost;
}

}  // namespace

int main() {
  bool small = std::getenv("MIRABEL_BENCH_SMALL") != nullptr;
  const int runs = small ? 1 : 3;

  struct Scale {
    int offers;
    double budget_s;
  };
  std::vector<Scale> scales = small
      ? std::vector<Scale>{{10, 0.3}, {100, 0.6}, {1000, 2.0}, {10000, 6.0}}
      : std::vector<Scale>{{10, 0.5}, {100, 1.5}, {1000, 6.0}, {10000, 20.0}};

  bench::BenchReport report("fig6_scheduling");
  report.AddConfig("runs", static_cast<int64_t>(runs));

  CsvTable table({"offers", "algorithm", "time_s", "avg_cost_eur"});
  for (const Scale& scale : scales) {
    ScenarioConfig scenario_cfg;
    scenario_cfg.num_offers = scale.offers;
    scenario_cfg.seed = 17 + static_cast<uint64_t>(scale.offers);
    // Size the imbalance to the flexible volume so the problem stays
    // meaningful across scales.
    scenario_cfg.imbalance_amplitude_kwh = 4.0 * scale.offers;
    scenario_cfg.max_buy_kwh = 0.8 * scale.offers;
    scenario_cfg.max_sell_kwh = 0.8 * scale.offers;
    SchedulingProblem problem = MakeScenario(scenario_cfg);

    // Checkpoints along the budget (paper plots full curves).
    std::vector<double> checkpoints;
    for (double f : {0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
      checkpoints.push_back(f * scale.budget_s);
    }

    for (const std::string algo :
         {"GreedySearch", "EvolutionaryAlgorithm"}) {
      std::vector<double> sums(checkpoints.size(), 0.0);
      double final_sum = 0.0;
      for (int r = 0; r < runs; ++r) {
        auto scheduler =
            std::move(edms::SchedulerRegistry::Default().Create(algo))
                .value();
        SchedulerOptions options;
        options.time_budget_s = scale.budget_s;
        options.seed = 1000 + static_cast<uint64_t>(r);
        auto result = scheduler->Run(problem, options);
        if (!result.ok()) {
          std::cerr << algo << " failed: " << result.status() << "\n";
          return 1;
        }
        for (size_t c = 0; c < checkpoints.size(); ++c) {
          sums[c] += CostAt(result->trace, checkpoints[c]);
        }
        final_sum += result->cost.total();
      }
      for (size_t c = 0; c < checkpoints.size(); ++c) {
        table.BeginRow();
        table.AddInt(scale.offers);
        table.AddCell(algo == "GreedySearch" ? "GS" : "EA");
        table.AddNumber(checkpoints[c], 2);
        table.AddNumber(sums[c] / runs, 1);
      }
      std::printf("%5d offers  %-22s final avg cost %10.1f EUR\n",
                  scale.offers, algo.c_str(), final_sum / runs);
      report
          .AddResult(std::string(algo == "GreedySearch" ? "GS" : "EA") + "/" +
                     std::to_string(scale.offers))
          .Wall(scale.budget_s * runs)
          .Items(static_cast<double>(scale.offers) * runs)
          .Metric("final_avg_cost_eur", final_sum / runs)
          .Metric("budget_s", scale.budget_s);
    }
  }

  std::cout << "\n=== Figure 6: schedule cost vs time, EA vs GS ===\n";
  table.WritePretty(std::cout);
  std::printf("\npaper shape: cost decreases over time; convergence slows "
              "sharply with the flex-offer count.\n");
  report.WriteFile();
  return 0;
}
