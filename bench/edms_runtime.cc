// Shard-scaling trajectory of the ShardedEdmsRuntime: the edms_engine bench
// workload (batch intake + tick-driven gate closures) swept over shards in
// {1, 2, 4, 8}, emitting BENCH_edms_runtime.json next to the single-engine
// BENCH_edms_engine.json trajectory.
//
// Methodology: every shard count runs the identical workload and engine
// template with a fixed per-gate scheduling budget (iteration-capped for
// determinism — the anytime greedy scheduler consumes whatever budget it is
// given, exactly like the seed's wall-clock budgets). The runtime divides
// that budget across its shards (divide_scheduler_budget), so the total
// scheduling effort per gate is held constant and the comparison is
// quality-normalized — the imbalance-reduction metric below stays flat
// across the sweep while throughput rises. Shards run concurrently on their
// worker threads, so the curve depends on the measured machine; the config
// block records hardware_concurrency. Even single-core runs scale (~1.5x at
// 4 shards): partitioned gates stop burning the full budget re-polishing
// the tiny late-gate problems. Multi-core runs add near-linear overlap of
// the per-shard scheduling phases on top.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_main.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"
#include "edms/sharded_runtime.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

struct RunResult {
  int64_t offers = 0;
  size_t accepted = 0;
  double intake_s = 0.0;
  double loop_s = 0.0;
  int64_t macros = 0;
  int64_t micro_schedules = 0;
  int64_t expired = 0;
  int64_t scheduling_runs = 0;
  int64_t submit_batches = 0;
  double imbalance_reduction_kwh = 0.0;
  double schedule_cost_eur = 0.0;
};

RunResult RunWorkload(size_t num_shards, int64_t count, int iterations,
                      int days) {
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = count;
  workload.seed = 1312;
  workload.horizon_days = days;
  workload.num_owners = std::max<int64_t>(count / 16, 64);
  std::vector<flexoffer::FlexOffer> offers =
      datagen::GenerateFlexOffers(workload);

  edms::ShardedEdmsRuntime::Config config;
  config.num_shards = num_shards;
  config.engine.actor = 100;
  config.engine.negotiate = true;
  config.engine.aggregation.params = aggregation::AggregationParams::P2();
  config.engine.gate_period = 16;
  config.engine.horizon = 2 * flexoffer::kSlicesPerDay;
  // Iteration-capped anytime scheduling: the runtime divides the per-gate
  // cap across shards, holding total effort constant over the whole sweep.
  config.engine.scheduler_budget_s = 0.0;
  config.engine.scheduler_max_iterations = iterations;
  config.engine.seed = 11;
  config.engine.baseline = std::make_shared<edms::VectorBaselineProvider>(
      std::vector<double>(
          static_cast<size_t>((days + 2) * flexoffer::kSlicesPerDay), 8.0));
  edms::ShardedEdmsRuntime runtime(config);

  RunResult r;
  r.offers = count;

  Stopwatch intake_watch;
  auto accepted = runtime.SubmitOffers(offers, 0);
  if (!accepted.ok()) {
    std::cerr << "intake failed: " << accepted.status() << "\n";
    std::exit(1);
  }
  r.intake_s = intake_watch.ElapsedSeconds();
  r.accepted = *accepted;

  Stopwatch loop_watch;
  const flexoffer::TimeSlice end =
      static_cast<flexoffer::TimeSlice>(days + 1) * flexoffer::kSlicesPerDay;
  for (flexoffer::TimeSlice now = 0; now < end;
       now += config.engine.gate_period) {
    if (Status st = runtime.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      std::exit(1);
    }
    for (const edms::Event& event : runtime.PollEvents()) {
      if (std::get_if<edms::MacroPublished>(&event) != nullptr) ++r.macros;
      if (std::get_if<edms::ScheduleAssigned>(&event) != nullptr) {
        ++r.micro_schedules;
      }
      if (std::get_if<edms::OfferExpired>(&event) != nullptr) ++r.expired;
    }
  }
  r.loop_s = loop_watch.ElapsedSeconds();
  edms::EngineStats stats = runtime.stats();
  r.scheduling_runs = stats.scheduling_runs;
  r.submit_batches = stats.submit_batches;
  // Comparable quality metric across shard counts: each shard's problem
  // accounts the shared baseline once, so absolute imbalance totals scale
  // with the shard count — the achieved *reduction* does not.
  r.imbalance_reduction_kwh =
      stats.imbalance_before_kwh - stats.imbalance_after_kwh;
  r.schedule_cost_eur = stats.schedule_cost_eur;
  return r;
}

}  // namespace

int main() {
  bool small = bench::SmallMode();
  const int64_t count = small ? 2000 : 4000;
  const int iterations = small ? 2048 : 8192;
  const int days = 2;
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};

  bench::BenchReport report("edms_runtime");
  report.AddConfig("offers", count);
  report.AddConfig("days", static_cast<int64_t>(days));
  report.AddConfig("gate_period", static_cast<int64_t>(16));
  report.AddConfig("scheduler", std::string("GreedySearch"));
  report.AddConfig("scheduler_iterations_per_gate",
                   static_cast<int64_t>(iterations));
  report.AddConfig("hardware_concurrency",
                   static_cast<int64_t>(std::thread::hardware_concurrency()));
  report.AddConfig("small_mode", small);

  double base_throughput = 0.0;
  for (size_t shards : shard_counts) {
    RunResult r = RunWorkload(shards, count, iterations, days);
    double total_s = r.intake_s + r.loop_s;
    double throughput = static_cast<double>(r.offers) / std::max(1e-9, total_s);
    if (shards == 1) base_throughput = throughput;
    double speedup = base_throughput > 0.0 ? throughput / base_throughput : 0.0;
    report.AddResult("shards/" + std::to_string(shards))
        .Wall(total_s)
        .Items(static_cast<double>(r.offers))
        .Metric("shards", static_cast<double>(shards))
        .Metric("intake_s", r.intake_s)
        .Metric("control_loop_s", r.loop_s)
        .Metric("speedup_vs_1shard", speedup)
        .Metric("accepted", static_cast<double>(r.accepted))
        .Metric("macro_offers", static_cast<double>(r.macros))
        .Metric("micro_schedules", static_cast<double>(r.micro_schedules))
        .Metric("expired", static_cast<double>(r.expired))
        .Metric("scheduling_runs", static_cast<double>(r.scheduling_runs))
        .Metric("submit_batches", static_cast<double>(r.submit_batches))
        .Metric("imbalance_reduction_kwh", r.imbalance_reduction_kwh)
        .Metric("schedule_cost_eur", r.schedule_cost_eur);
    std::printf(
        "%zu shard(s): intake %.2fs, loop %.2fs -> %.0f offers/s "
        "(%.2fx vs 1 shard; %lld macros, %lld micro schedules, %lld runs, "
        "imbalance reduced %.0f kWh, cost %.0f EUR)\n",
        shards, r.intake_s, r.loop_s, throughput, speedup,
        static_cast<long long>(r.macros),
        static_cast<long long>(r.micro_schedules),
        static_cast<long long>(r.scheduling_runs), r.imbalance_reduction_kwh,
        r.schedule_cost_eur);
  }

  std::string path = report.WriteFile();
  if (path.empty()) {
    std::cerr << "failed to write bench report\n";
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
