// Runtime trajectories of the ShardedEdmsRuntime, emitting
// BENCH_edms_runtime.json next to the single-engine BENCH_edms_engine.json:
//
//  1. Shard scaling (results "shards/N"): the edms_engine bench workload
//     (batch intake + tick-driven gate closures) swept over shards in
//     {1, 2, 4, 8}, fork-join intake. Every shard count runs the identical
//     workload and engine template with a fixed, iteration-capped per-gate
//     scheduling budget that the runtime divides across shards, so the
//     total scheduling effort per gate is held constant and the comparison
//     is quality-normalized — the imbalance-reduction metric stays flat
//     across the sweep while throughput rises.
//
//  2. Streaming intake (results "streaming/{forkjoin,pooled}"): the same
//     tick-paced workload at 4 shards, submitted batch-by-batch. The
//     fork-join baseline blocks on every SubmitOffers before advancing the
//     gate; the pooled configuration streams the batches from a producer
//     thread into the MPSC intake queues while the gates run, so intake
//     overlaps scheduling.
//
//  3. Skewed load (results "skewed/{forkjoin,pooled}"): the tick-paced
//     workload with every owner routed to shard 0 of 4. The pooled
//     configuration keeps intake streaming against shard 0's long gates and
//     lets idle workers steal the loaded strand (steals are reported).
//
//  4. Offer→decision latency (results "latency/{sustained,bursty}"): the
//     tick workload at 4 shards with streaming intake, producer-paced.
//     Every offer is stamped (steady_clock) right before SubmitOffers();
//     the consumer stamps again when the offer's OfferAccepted /
//     ScheduleAssigned event surfaces from PollEvents() and reports the
//     nearest-rank p50/p95/p99 of both legs. "sustained" paces batches
//     evenly; "bursty" submits square-wave bursts followed by idle gaps —
//     the tail percentiles show what a burst does to decision latency.
//     Intake queue depth is sampled mid-stream via Snapshot() (the seqlock
//     path, exercised here on purpose) and reported as the peak.
//
// The streaming/skewed overlap wins require >= 2 hardware threads (the
// config block records hardware_concurrency); on a single-core machine the
// pooled and fork-join configurations converge. See docs/benchmarks.md.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_main.h"
#include "common/stopwatch.h"
#include "datagen/flex_offer_generator.h"
#include "edms/sharded_runtime.h"

using namespace mirabel;  // NOLINT: bench brevity

namespace {

constexpr int kGatePeriod = 16;

struct RunResult {
  int64_t offers = 0;
  size_t accepted = 0;
  double intake_s = 0.0;
  double loop_s = 0.0;
  double total_s = 0.0;
  int64_t macros = 0;
  int64_t micro_schedules = 0;
  int64_t expired = 0;
  int64_t scheduling_runs = 0;
  int64_t submit_batches = 0;
  uint64_t steals = 0;
  double imbalance_reduction_kwh = 0.0;
  double schedule_cost_eur = 0.0;
};

std::vector<flexoffer::FlexOffer> MakeWorkload(int64_t count, int days) {
  datagen::FlexOfferWorkloadConfig workload;
  workload.count = count;
  workload.seed = 1312;
  workload.horizon_days = days;
  workload.num_owners = std::max<int64_t>(count / 16, 64);
  return datagen::GenerateFlexOffers(workload);
}

edms::ShardedEdmsRuntime::Config RuntimeConfig(size_t num_shards,
                                               int iterations, int days) {
  edms::ShardedEdmsRuntime::Config config;
  config.num_shards = num_shards;
  config.engine.actor = 100;
  config.engine.negotiate = true;
  config.engine.aggregation.params = aggregation::AggregationParams::P2();
  config.engine.gate_period = kGatePeriod;
  config.engine.horizon = 2 * flexoffer::kSlicesPerDay;
  // Iteration-capped anytime scheduling: the runtime divides the per-gate
  // cap across shards, holding total effort constant over the whole sweep.
  config.engine.scheduler_budget_s = 0.0;
  config.engine.scheduler_max_iterations = iterations;
  config.engine.seed = 11;
  config.engine.baseline = std::make_shared<edms::VectorBaselineProvider>(
      std::vector<double>(
          static_cast<size_t>((days + 2) * flexoffer::kSlicesPerDay), 8.0));
  return config;
}

void CountEvents(edms::ShardedEdmsRuntime& runtime, RunResult* r) {
  for (const edms::Event& event : runtime.PollEvents()) {
    if (std::get_if<edms::MacroPublished>(&event) != nullptr) ++r->macros;
    if (std::get_if<edms::ScheduleAssigned>(&event) != nullptr) {
      ++r->micro_schedules;
    }
    if (std::get_if<edms::OfferExpired>(&event) != nullptr) ++r->expired;
  }
}

void FinishResult(edms::ShardedEdmsRuntime& runtime, RunResult* r) {
  edms::EngineStats stats = runtime.stats();
  r->scheduling_runs = stats.scheduling_runs;
  r->submit_batches = stats.submit_batches;
  // Comparable quality metric across shard counts: each shard's problem
  // accounts the shared baseline once, so absolute imbalance totals scale
  // with the shard count — the achieved *reduction* does not.
  r->imbalance_reduction_kwh =
      stats.imbalance_before_kwh - stats.imbalance_after_kwh;
  r->schedule_cost_eur = stats.schedule_cost_eur;
  r->accepted = static_cast<size_t>(stats.offers_accepted);
  if (runtime.pool() != nullptr) r->steals = runtime.pool()->steals();
}

/// Shard-scaling leg: one up-front batch intake, then the tick loop —
/// unchanged from the pre-pool bench so the trajectory stays comparable.
RunResult RunBatchWorkload(size_t num_shards, int64_t count, int iterations,
                           int days) {
  std::vector<flexoffer::FlexOffer> offers = MakeWorkload(count, days);
  edms::ShardedEdmsRuntime runtime(RuntimeConfig(num_shards, iterations, days));

  RunResult r;
  r.offers = count;

  Stopwatch intake_watch;
  auto accepted = runtime.SubmitOffers(offers, 0);
  if (!accepted.ok()) {
    std::cerr << "intake failed: " << accepted.status() << "\n";
    std::exit(1);
  }
  r.intake_s = intake_watch.ElapsedSeconds();

  Stopwatch loop_watch;
  const flexoffer::TimeSlice end =
      static_cast<flexoffer::TimeSlice>(days + 1) * flexoffer::kSlicesPerDay;
  for (flexoffer::TimeSlice now = 0; now < end; now += kGatePeriod) {
    if (Status st = runtime.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      std::exit(1);
    }
    CountEvents(runtime, &r);
  }
  r.loop_s = loop_watch.ElapsedSeconds();
  r.total_s = r.intake_s + r.loop_s;
  FinishResult(runtime, &r);
  return r;
}

/// Streaming/skew legs: the workload arrives as one batch per tick. The
/// fork-join baseline submits batch k (blocking) right before gate k; the
/// pooled configuration streams the same batches from a producer thread
/// while the gate loop runs, overlapping intake with scheduling.
RunResult RunTickWorkload(size_t num_shards, int64_t count, int iterations,
                          int days, bool streaming, bool skewed) {
  std::vector<flexoffer::FlexOffer> offers = MakeWorkload(count, days);
  edms::ShardedEdmsRuntime::Config config =
      RuntimeConfig(num_shards, iterations, days);
  config.streaming_intake = streaming;
  if (skewed) {
    config.router = [](flexoffer::ActorId, size_t) -> size_t { return 0; };
  }
  edms::ShardedEdmsRuntime runtime(config);

  RunResult r;
  r.offers = count;
  const flexoffer::TimeSlice end =
      static_cast<flexoffer::TimeSlice>(days + 1) * flexoffer::kSlicesPerDay;
  const size_t num_ticks = static_cast<size_t>(end / kGatePeriod);
  const size_t batch = (offers.size() + num_ticks - 1) / num_ticks;

  auto submit_batch = [&](size_t tick) {
    size_t begin = tick * batch;
    if (begin >= offers.size()) return;
    size_t len = std::min(batch, offers.size() - begin);
    auto span = std::span<const flexoffer::FlexOffer>(offers.data() + begin,
                                                      len);
    auto submitted = runtime.SubmitOffers(
        span, static_cast<flexoffer::TimeSlice>(tick) * kGatePeriod);
    if (!submitted.ok()) {
      std::cerr << "intake failed: " << submitted.status() << "\n";
      std::exit(1);
    }
  };

  Stopwatch total_watch;
  std::thread producer;
  if (streaming) {
    // Free-running producer: batches stream into the MPSC intake queues
    // while the gate loop below advances concurrently.
    producer = std::thread([&] {
      for (size_t tick = 0; tick < num_ticks; ++tick) submit_batch(tick);
    });
  }
  for (size_t tick = 0; tick < num_ticks; ++tick) {
    if (!streaming) submit_batch(tick);
    flexoffer::TimeSlice now =
        static_cast<flexoffer::TimeSlice>(tick) * kGatePeriod;
    if (Status st = runtime.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      std::exit(1);
    }
    CountEvents(runtime, &r);
  }
  if (producer.joinable()) producer.join();
  if (Status st = runtime.FlushIntake(); !st.ok()) {
    std::cerr << "intake flush failed: " << st << "\n";
    std::exit(1);
  }
  // One wind-down gate absorbs batches that streamed in behind the loop's
  // last gate (both modes run it, keeping the gate count identical).
  if (Status st = runtime.Advance(end); !st.ok()) {
    std::cerr << "gate failed: " << st << "\n";
    std::exit(1);
  }
  CountEvents(runtime, &r);
  r.total_s = total_watch.ElapsedSeconds();
  r.loop_s = r.total_s;
  FinishResult(runtime, &r);
  return r;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

struct LatencyResult {
  RunResult run;
  /// Submit→OfferAccepted-event latency per offer, milliseconds.
  std::vector<double> accept_ms;
  /// Submit→ScheduleAssigned-event latency per offer, milliseconds.
  std::vector<double> assign_ms;
  /// Peak intake queue depth (sum over shards) seen by mid-stream
  /// Snapshot() samples.
  int64_t peak_intake_depth = 0;
};

/// Latency leg: 4 shards, streaming intake, producer-paced batches. The
/// producer stamps each offer right before SubmitOffers(); the consumer
/// stamps when the acceptance / schedule event surfaces from PollEvents().
/// The stamp is a plain write: it happens-before the consumer's read via
/// intake-queue push/pop and the engine's SPSC event queue.
LatencyResult RunLatencyWorkload(int64_t count, int iterations, int days,
                                 bool bursty) {
  std::vector<flexoffer::FlexOffer> offers = MakeWorkload(count, days);
  edms::ShardedEdmsRuntime::Config config =
      RuntimeConfig(4, iterations, days);
  config.streaming_intake = true;
  edms::ShardedEdmsRuntime runtime(config);

  std::unordered_map<flexoffer::FlexOfferId, size_t> index_of;
  index_of.reserve(offers.size());
  for (size_t i = 0; i < offers.size(); ++i) index_of[offers[i].id] = i;
  std::vector<int64_t> submit_ns(offers.size(), 0);

  LatencyResult lr;
  lr.run.offers = count;
  const flexoffer::TimeSlice end =
      static_cast<flexoffer::TimeSlice>(days + 1) * flexoffer::kSlicesPerDay;
  const size_t num_ticks = static_cast<size_t>(end / kGatePeriod);
  const size_t batch = (offers.size() + num_ticks - 1) / num_ticks;
  // Square wave for the bursty profile: kBurst batches back to back, then
  // an idle gap of the time the spread-out batches would have taken.
  constexpr size_t kBurst = 6;
  constexpr auto kPace = std::chrono::microseconds(700);

  std::thread producer([&] {
    for (size_t tick = 0; tick < num_ticks; ++tick) {
      size_t begin = tick * batch;
      if (begin >= offers.size()) break;
      size_t len = std::min(batch, offers.size() - begin);
      int64_t stamp = NowNanos();
      for (size_t i = begin; i < begin + len; ++i) submit_ns[i] = stamp;
      auto span =
          std::span<const flexoffer::FlexOffer>(offers.data() + begin, len);
      auto submitted = runtime.SubmitOffers(
          span, static_cast<flexoffer::TimeSlice>(tick) * kGatePeriod);
      if (!submitted.ok()) {
        std::cerr << "intake failed: " << submitted.status() << "\n";
        std::exit(1);
      }
      if (bursty) {
        if (tick % kBurst == kBurst - 1) {
          std::this_thread::sleep_for(kBurst * kPace);
        }
      } else {
        std::this_thread::sleep_for(kPace);
      }
    }
  });

  auto drain_events = [&] {
    for (const edms::Event& event : runtime.PollEvents()) {
      const int64_t now_ns = NowNanos();
      if (const auto* acc = std::get_if<edms::OfferAccepted>(&event)) {
        auto it = index_of.find(acc->offer);
        if (it != index_of.end()) {
          lr.accept_ms.push_back(
              static_cast<double>(now_ns - submit_ns[it->second]) * 1e-6);
        }
      } else if (const auto* assigned =
                     std::get_if<edms::ScheduleAssigned>(&event)) {
        auto it = index_of.find(assigned->schedule.offer_id);
        if (it != index_of.end()) {
          lr.assign_ms.push_back(
              static_cast<double>(now_ns - submit_ns[it->second]) * 1e-6);
          ++lr.run.micro_schedules;
        }
      } else if (std::get_if<edms::MacroPublished>(&event) != nullptr) {
        ++lr.run.macros;
      } else if (std::get_if<edms::OfferExpired>(&event) != nullptr) {
        ++lr.run.expired;
      }
    }
  };

  Stopwatch total_watch;
  for (size_t tick = 0; tick < num_ticks; ++tick) {
    flexoffer::TimeSlice now =
        static_cast<flexoffer::TimeSlice>(tick) * kGatePeriod;
    if (Status st = runtime.Advance(now); !st.ok()) {
      std::cerr << "gate failed: " << st << "\n";
      std::exit(1);
    }
    // Mid-stream snapshot while the producer is live: the lock-free path.
    edms::RuntimeSnapshot snap = runtime.Snapshot();
    lr.peak_intake_depth =
        std::max(lr.peak_intake_depth, snap.intake_depth_batches);
    drain_events();
  }
  producer.join();
  if (Status st = runtime.FlushIntake(); !st.ok()) {
    std::cerr << "intake flush failed: " << st << "\n";
    std::exit(1);
  }
  if (Status st = runtime.Advance(end); !st.ok()) {
    std::cerr << "gate failed: " << st << "\n";
    std::exit(1);
  }
  drain_events();
  lr.run.total_s = total_watch.ElapsedSeconds();
  lr.run.loop_s = lr.run.total_s;
  FinishResult(runtime, &lr.run);
  std::sort(lr.accept_ms.begin(), lr.accept_ms.end());
  std::sort(lr.assign_ms.begin(), lr.assign_ms.end());
  return lr;
}

void ReportLatency(bench::BenchReport& report, const std::string& name,
                   const LatencyResult& lr) {
  report.AddResult(name)
      .Wall(lr.run.total_s)
      .Items(static_cast<double>(lr.run.offers))
      .Metric("accept_samples", static_cast<double>(lr.accept_ms.size()))
      .Metric("accept_p50_ms", Percentile(lr.accept_ms, 0.50))
      .Metric("accept_p95_ms", Percentile(lr.accept_ms, 0.95))
      .Metric("accept_p99_ms", Percentile(lr.accept_ms, 0.99))
      .Metric("assign_samples", static_cast<double>(lr.assign_ms.size()))
      .Metric("assign_p50_ms", Percentile(lr.assign_ms, 0.50))
      .Metric("assign_p95_ms", Percentile(lr.assign_ms, 0.95))
      .Metric("assign_p99_ms", Percentile(lr.assign_ms, 0.99))
      .Metric("peak_intake_depth_batches",
              static_cast<double>(lr.peak_intake_depth))
      .Metric("accepted", static_cast<double>(lr.run.accepted))
      .Metric("micro_schedules", static_cast<double>(lr.run.micro_schedules));
  std::printf(
      "%-18s total %.2fs  accept p50/p95/p99 %.2f/%.2f/%.2f ms  "
      "assign p50/p95/p99 %.2f/%.2f/%.2f ms  peak depth %lld\n",
      name.c_str(), lr.run.total_s, Percentile(lr.accept_ms, 0.50),
      Percentile(lr.accept_ms, 0.95), Percentile(lr.accept_ms, 0.99),
      Percentile(lr.assign_ms, 0.50), Percentile(lr.assign_ms, 0.95),
      Percentile(lr.assign_ms, 0.99),
      static_cast<long long>(lr.peak_intake_depth));
}

void Report(bench::BenchReport& report, const std::string& name,
            const RunResult& r, double baseline_throughput) {
  double throughput =
      static_cast<double>(r.offers) / std::max(1e-9, r.total_s);
  double speedup =
      baseline_throughput > 0.0 ? throughput / baseline_throughput : 0.0;
  report.AddResult(name)
      .Wall(r.total_s)
      .Items(static_cast<double>(r.offers))
      .Metric("intake_s", r.intake_s)
      .Metric("control_loop_s", r.loop_s)
      .Metric("speedup_vs_baseline", speedup)
      .Metric("accepted", static_cast<double>(r.accepted))
      .Metric("macro_offers", static_cast<double>(r.macros))
      .Metric("micro_schedules", static_cast<double>(r.micro_schedules))
      .Metric("expired", static_cast<double>(r.expired))
      .Metric("scheduling_runs", static_cast<double>(r.scheduling_runs))
      .Metric("submit_batches", static_cast<double>(r.submit_batches))
      .Metric("pool_steals", static_cast<double>(r.steals))
      .Metric("imbalance_reduction_kwh", r.imbalance_reduction_kwh)
      .Metric("schedule_cost_eur", r.schedule_cost_eur);
  std::printf(
      "%-18s total %.2fs -> %.0f offers/s (%.2fx; %lld macros, "
      "%lld micro schedules, %lld runs, %llu steals, "
      "imbalance reduced %.0f kWh)\n",
      name.c_str(), r.total_s, throughput, speedup,
      static_cast<long long>(r.macros),
      static_cast<long long>(r.micro_schedules),
      static_cast<long long>(r.scheduling_runs),
      static_cast<unsigned long long>(r.steals), r.imbalance_reduction_kwh);
}

}  // namespace

int main() {
  bool small = bench::SmallMode();
  const int64_t count = small ? 2000 : 4000;
  const int iterations = small ? 2048 : 8192;
  const int days = 2;
  const std::vector<size_t> shard_counts = {1, 2, 4, 8};

  bench::BenchReport report("edms_runtime");
  report.AddConfig("offers", count);
  report.AddConfig("days", static_cast<int64_t>(days));
  report.AddConfig("gate_period", static_cast<int64_t>(kGatePeriod));
  report.AddConfig("scheduler", std::string("GreedySearch"));
  report.AddConfig("scheduler_iterations_per_gate",
                   static_cast<int64_t>(iterations));
  report.AddConfig("hardware_concurrency",
                   static_cast<int64_t>(std::thread::hardware_concurrency()));
  report.AddConfig("small_mode", small);

  // Leg 1: shard scaling, fork-join intake.
  double base_throughput = 0.0;
  for (size_t shards : shard_counts) {
    RunResult r = RunBatchWorkload(shards, count, iterations, days);
    double throughput =
        static_cast<double>(r.offers) / std::max(1e-9, r.total_s);
    if (shards == 1) base_throughput = throughput;
    Report(report, "shards/" + std::to_string(shards), r, base_throughput);
  }

  // Leg 2: streaming intake vs fork-join, 4 shards, tick-paced batches.
  RunResult stream_base = RunTickWorkload(4, count, iterations, days,
                                          /*streaming=*/false,
                                          /*skewed=*/false);
  double stream_base_tp = static_cast<double>(stream_base.offers) /
                          std::max(1e-9, stream_base.total_s);
  Report(report, "streaming/forkjoin", stream_base, stream_base_tp);
  RunResult stream_pool = RunTickWorkload(4, count, iterations, days,
                                          /*streaming=*/true,
                                          /*skewed=*/false);
  Report(report, "streaming/pooled", stream_pool, stream_base_tp);

  // Leg 3: skewed load (all owners on shard 0 of 4).
  RunResult skew_base = RunTickWorkload(4, count, iterations, days,
                                        /*streaming=*/false,
                                        /*skewed=*/true);
  double skew_base_tp = static_cast<double>(skew_base.offers) /
                        std::max(1e-9, skew_base.total_s);
  Report(report, "skewed/forkjoin", skew_base, skew_base_tp);
  RunResult skew_pool = RunTickWorkload(4, count, iterations, days,
                                        /*streaming=*/true,
                                        /*skewed=*/true);
  Report(report, "skewed/pooled", skew_pool, skew_base_tp);

  // Leg 4: offer→decision latency under sustained and bursty streaming load.
  ReportLatency(report, "latency/sustained",
                RunLatencyWorkload(count, iterations, days, /*bursty=*/false));
  ReportLatency(report, "latency/bursty",
                RunLatencyWorkload(count, iterations, days, /*bursty=*/true));

  std::string path = report.WriteFile();
  if (path.empty()) {
    std::cerr << "failed to write bench report\n";
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
