// Adapter between google-benchmark and the shared BenchReport: prints the
// usual console table AND captures every iteration run into
// BENCH_<name>.json on Finalize. Used as the display reporter:
//   GBenchJsonReporter reporter("micro_core");
//   benchmark::RunSpecifiedBenchmarks(&reporter);
#ifndef MIRABEL_BENCH_GBENCH_JSON_REPORTER_H_
#define MIRABEL_BENCH_GBENCH_JSON_REPORTER_H_

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_main.h"

namespace mirabel::bench {

class GBenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonReporter(std::string bench_name)
      : report_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || RunErrored(run)) continue;
      BenchResult& row = report_.AddResult(run.benchmark_name());
      // Total measured wall time for the run, plus the per-iteration time
      // google-benchmark itself reports.
      row.Wall(run.real_accumulated_time);
      row.Metric("iterations", static_cast<double>(run.iterations));
      if (run.iterations > 0) {
        row.Metric("real_time_per_iter_s",
                   run.real_accumulated_time / static_cast<double>(run.iterations));
        row.Metric("cpu_time_per_iter_s",
                   run.cpu_accumulated_time / static_cast<double>(run.iterations));
      }
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        row.throughput_items_per_s = items->second.value;
      } else if (run.real_accumulated_time > 0) {
        // Fall back to iterations/sec so every row carries a throughput.
        row.throughput_items_per_s =
            static_cast<double>(run.iterations) / run.real_accumulated_time;
      }
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    report_.WriteFile();
  }

  BenchReport& report() { return report_; }

 private:
  // benchmark < 1.8 exposes Run::error_occurred; 1.8+ replaced it with the
  // Run::skipped state. Detect whichever this benchmark version has.
  template <typename R = Run>
  static bool RunErrored(const R& run) {
    if constexpr (requires { run.error_occurred; }) {
      return run.error_occurred;
    } else if constexpr (requires { run.skipped; }) {
      return static_cast<int>(run.skipped) != 0;
    } else {
      return false;
    }
  }

  BenchReport report_;
};

}  // namespace mirabel::bench

#endif  // MIRABEL_BENCH_GBENCH_JSON_REPORTER_H_
