// Uncertainty study: what does ignoring forecast error cost?
//
// For each named stress scenario (datagen/stress_scenarios.h) the study
// plans two schedules on the SAME point forecast — a point-optimal one
// (iteration-capped greedy) and a robust one (RobustScheduler over a
// seeded forecast-error ensemble) — then scores both on out-of-sample
// realizations drawn from the scenario's true error model. A clairvoyant
// run on each realized problem anchors the regret. All runs are
// iteration-capped and seeded, so the report is bit-reproducible.
//
// BENCH_uncertainty_study.json carries, per scenario, the realized mean
// cost, the realized CVaR tail, the regret distribution, and a CVaR
// trajectory across tail masses; the summary leg counts the scenarios
// where the robust schedule beats the point schedule on realized mean or
// CVaR (CI's schema check requires >= 3 of 4).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_main.h"
#include "common/csv.h"
#include "common/stopwatch.h"
#include "datagen/stress_scenarios.h"
#include "scheduling/robust_scheduler.h"
#include "scheduling/scheduler.h"
#include "scheduling/stochastic_evaluator.h"

using namespace mirabel;              // NOLINT: bench brevity
using namespace mirabel::scheduling;  // NOLINT

namespace {

/// Mean of the worst ceil(alpha * n) values (sorted copy; bench-side CVaR
/// over realized costs, matching StochasticEvaluator's definition).
double CvarOf(std::vector<double> costs, double alpha) {
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  size_t tail = static_cast<size_t>(
      std::ceil(alpha * static_cast<double>(costs.size())));
  tail = std::clamp<size_t>(tail, 1, costs.size());
  double acc = 0.0;
  for (size_t i = 0; i < tail; ++i) acc += costs[i];
  return acc / static_cast<double>(tail);
}

double MeanOf(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double P95Of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(
      std::ceil(0.95 * static_cast<double>(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main() {
  const bool small = bench::SmallMode();
  const int ensemble_size = small ? 8 : 24;
  const int realizations = small ? 20 : 80;
  const int iterations = small ? 60 : 200;
  const double cvar_alpha = 0.25;
  const double risk_weight = 0.8;
  const uint64_t library_seed = 7;

  bench::BenchReport report("uncertainty_study");
  report.AddConfig("ensemble_size", static_cast<int64_t>(ensemble_size));
  report.AddConfig("realizations", static_cast<int64_t>(realizations));
  report.AddConfig("iterations", static_cast<int64_t>(iterations));
  report.AddConfig("cvar_alpha", cvar_alpha);
  report.AddConfig("risk_weight", risk_weight);
  report.AddConfig("seed", static_cast<int64_t>(library_seed));

  // Iteration-capped, unbudgeted options: bit-deterministic per seed.
  SchedulerOptions options;
  options.time_budget_s = 0.0;
  options.max_iterations = iterations;
  options.seed = 5;

  CsvTable table({"scenario", "point_mean", "robust_mean", "point_cvar",
                  "robust_cvar", "point_regret_p95", "robust_regret_p95",
                  "robust_win"});
  int robust_wins = 0;
  int scenario_count = 0;

  for (const datagen::StressScenarioSpec& spec :
       datagen::NamedStressScenarios(library_seed)) {
    ++scenario_count;
    Stopwatch watch;
    SchedulingProblem planning = datagen::MakePlanningProblem(spec);
    CompiledProblem planning_cp(planning);

    // Point plan: the forecast is trusted as exact.
    GreedyScheduler point_scheduler;
    auto point_run = point_scheduler.RunCompiled(planning_cp, options);
    if (!point_run.ok()) {
      std::cerr << spec.name << ": point run failed: " << point_run.status()
                << "\n";
      return 1;
    }

    // Robust plan: same inner scheduler, same iteration cap per candidate,
    // re-ranked across the stress ensemble.
    auto ensemble = datagen::MakeStressEnsemble(spec, ensemble_size);
    if (!ensemble.ok()) {
      std::cerr << spec.name << ": ensemble failed: " << ensemble.status()
                << "\n";
      return 1;
    }
    RobustScheduler::Config robust_config;
    robust_config.inner_factory = [] {
      return std::make_unique<GreedyScheduler>();
    };
    robust_config.ensemble = std::move(ensemble.value());
    robust_config.cvar_alpha = cvar_alpha;
    robust_config.risk_weight = risk_weight;
    robust_config.scenario_candidates = 3;
    RobustScheduler robust_scheduler(std::move(robust_config));
    auto robust_run = robust_scheduler.RunCompiled(planning_cp, options);
    if (!robust_run.ok()) {
      std::cerr << spec.name << ": robust run failed: " << robust_run.status()
                << "\n";
      return 1;
    }

    // Out-of-sample scoring: realized cost of both plans plus a clairvoyant
    // anchor (same scheduler, planned on the realized problem itself).
    std::vector<double> point_costs, robust_costs;
    std::vector<double> point_regret, robust_regret;
    point_costs.reserve(static_cast<size_t>(realizations));
    robust_costs.reserve(static_cast<size_t>(realizations));
    for (int r = 0; r < realizations; ++r) {
      SchedulingProblem realized = datagen::MakeRealizedProblem(spec, r);
      CompiledProblem realized_cp(realized);
      ScheduleWorkspace ws(realized_cp);
      auto point_cost = ws.EvaluateInto(realized_cp, point_run->schedule);
      auto robust_cost = ws.EvaluateInto(realized_cp, robust_run->schedule);
      if (!point_cost.ok() || !robust_cost.ok()) {
        std::cerr << spec.name << ": realized evaluation failed\n";
        return 1;
      }
      GreedyScheduler clairvoyant;
      auto oracle = clairvoyant.RunCompiled(realized_cp, options);
      if (!oracle.ok()) {
        std::cerr << spec.name << ": clairvoyant run failed\n";
        return 1;
      }
      point_costs.push_back(point_cost.value());
      robust_costs.push_back(robust_cost.value());
      point_regret.push_back(point_cost.value() - oracle->cost.total());
      robust_regret.push_back(robust_cost.value() - oracle->cost.total());
    }

    const double point_mean = MeanOf(point_costs);
    const double robust_mean = MeanOf(robust_costs);
    const double point_cvar = CvarOf(point_costs, cvar_alpha);
    const double robust_cvar = CvarOf(robust_costs, cvar_alpha);
    const bool win = robust_mean < point_mean || robust_cvar < point_cvar;
    if (win) ++robust_wins;

    table.BeginRow();
    table.AddCell(spec.name);
    table.AddNumber(point_mean, 2);
    table.AddNumber(robust_mean, 2);
    table.AddNumber(point_cvar, 2);
    table.AddNumber(robust_cvar, 2);
    table.AddNumber(P95Of(point_regret), 2);
    table.AddNumber(P95Of(robust_regret), 2);
    table.AddCell(win ? "yes" : "no");

    report.AddResult("stress/" + spec.name)
        .Wall(watch.ElapsedSeconds())
        .Items(static_cast<double>(realizations))
        .Metric("point_mean_cost_eur", point_mean)
        .Metric("robust_mean_cost_eur", robust_mean)
        .Metric("point_cvar_eur", point_cvar)
        .Metric("robust_cvar_eur", robust_cvar)
        .Metric("point_regret_mean_eur", MeanOf(point_regret))
        .Metric("robust_regret_mean_eur", MeanOf(robust_regret))
        .Metric("point_regret_p95_eur", P95Of(point_regret))
        .Metric("robust_regret_p95_eur", P95Of(robust_regret))
        .Metric("robust_win", win ? 1.0 : 0.0)
        .Metric("realizations", static_cast<double>(realizations))
        .Metric("planning_expected_cost_eur",
                robust_run->robust ? robust_run->robust->expected_cost_eur
                                   : 0.0)
        .Metric("planning_cvar_eur",
                robust_run->robust ? robust_run->robust->cvar_eur : 0.0);

    // CVaR trajectory: how the realized tail behaves as the tail mass
    // shrinks. The point plan's curve steepens sharply on stress events;
    // the robust plan's stays flat — that flattening is the payoff.
    auto& trajectory = report.AddResult("cvar_trajectory/" + spec.name);
    const std::pair<const char*, double> alphas[] = {
        {"05", 0.05}, {"10", 0.10}, {"25", 0.25}, {"50", 0.50}, {"100", 1.0}};
    for (const auto& [label, alpha] : alphas) {
      trajectory
          .Metric(std::string("point_cvar_a") + label,
                  CvarOf(point_costs, alpha))
          .Metric(std::string("robust_cvar_a") + label,
                  CvarOf(robust_costs, alpha));
    }
  }

  report.AddResult("summary")
      .Metric("robust_wins", static_cast<double>(robust_wins))
      .Metric("scenarios", static_cast<double>(scenario_count));

  std::cout << "=== Uncertainty study: point vs robust under stress ===\n";
  table.WritePretty(std::cout);
  std::printf("\nrobust wins (realized mean or CVaR): %d / %d scenarios\n",
              robust_wins, scenario_count);
  report.WriteFile();
  return 0;
}
